//! Nice instances (Definition 1): `I⁰_exp = ∅`.
//!
//! Algorithm 2 schedules a nice instance with makespan `<= 3T/2`:
//!
//! 1. every `I⁺_exp` class `i` is wrapped over `a_i` machines filled to the
//!    border (`a_i = α'_i`, or `γ_i` for the Class-Jumping variant of
//!    Section 4.4, Figure 5), with the residue stacked on the last machine up
//!    to `3T/2`;
//! 2. `I⁻_exp` classes are paired two per machine (`<= 2 · 3T/4`);
//! 3. all cheap load is wrapped between `T/2` and `3T/2` over the remaining
//!    machines (with `T/2` reserved below each gap for moved setups).
//!
//! The builder is shared by the standalone nice dual ([`nice_dual`],
//! Theorem 4) and by the general algorithm, which passes job *pieces* and its
//! own machine window.

use bss_instance::{ClassId, Instance, JobId};
use bss_rational::Rational;
use bss_schedule::{PlacementSink, Schedule};
use bss_wrap::{wrap_into, GapRun};

use crate::classify::{alpha_prime, classify, gamma};
use crate::workspace::WrapScratch;

/// Machine-count mode for `I⁺_exp` classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountMode {
    /// `α'_i = ⌊P_i/(T-s_i)⌋` — Theorem 4 / Algorithm 2.
    AlphaPrime,
    /// `γ_i` — the modified wrapping of Section 4.4 whose jumps depend on
    /// `s_i + P_i` only (Figure 5).
    Gamma,
}

impl CountMode {
    /// The machine count for an `I⁺_exp` class under this mode.
    #[must_use]
    pub fn count(&self, inst: &Instance, t: Rational, class: ClassId) -> usize {
        match self {
            CountMode::AlphaPrime => alpha_prime(inst, t, class),
            CountMode::Gamma => gamma(inst, t, class),
        }
    }
}

/// The jobs carried by a [`Batch`]: either a whole class (lengths read from
/// the instance — nothing materialized) or an explicit range of job pieces
/// in a shared piece arena. The arena form is what keeps plan construction
/// free of per-batch `Vec` allocations: all split pieces of a plan live in
/// one flat, workspace-owned buffer.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BatchJobs {
    /// All jobs of the class, timings from the instance.
    Full,
    /// `arena[start..end]` holds the `(job, piece length)` pairs.
    Pieces { start: usize, end: usize },
}

/// A batch to place: a class's setup plus (a subset of) its jobs, possibly as
/// rational pieces.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Batch {
    pub class: ClassId,
    pub setup: u64,
    pub jobs: BatchJobs,
}

impl Batch {
    /// A batch holding a full class of `inst`.
    pub(crate) fn full(inst: &Instance, class: ClassId) -> Self {
        Batch {
            class,
            setup: inst.setup(class),
            jobs: BatchJobs::Full,
        }
    }

    /// Invokes `f` for every `(job, piece length)` of the batch.
    pub(crate) fn for_each_piece(
        &self,
        inst: &Instance,
        arena: &[(JobId, Rational)],
        mut f: impl FnMut(JobId, Rational),
    ) {
        match self.jobs {
            BatchJobs::Full => {
                for &j in inst.class_jobs(self.class) {
                    f(j, Rational::from(inst.job(j).time));
                }
            }
            BatchJobs::Pieces { start, end } => {
                for &(j, len) in &arena[start..end] {
                    f(j, len);
                }
            }
        }
    }

    /// `true` iff the batch carries at least one piece.
    pub(crate) fn has_pieces(&self, inst: &Instance) -> bool {
        match self.jobs {
            BatchJobs::Full => !inst.class_jobs(self.class).is_empty(),
            BatchJobs::Pieces { start, end } => end > start,
        }
    }

    /// Appends the batch (setup, then pieces) to a wrap sequence.
    fn sequence_into(
        &self,
        inst: &Instance,
        arena: &[(JobId, Rational)],
        q: &mut bss_wrap::WrapSequence,
    ) {
        q.push_setup(self.class, Rational::from(self.setup));
        self.for_each_piece(inst, arena, |j, len| q.push_piece(self.class, j, len));
    }
}

/// The input of the nice builder, borrowed from the caller (in the general
/// algorithm: from the [`DualWorkspace`](crate::DualWorkspace) that owns the
/// plan buffers).
#[derive(Debug, Clone, Copy)]
pub(crate) struct NiceParts<'a> {
    /// `I⁺_exp` classes (always placed whole) with machine counts `a_i`.
    pub plus_classes: &'a [ClassId],
    pub plus_counts: &'a [usize],
    /// `I⁻_exp` classes (always placed whole).
    pub minus_classes: &'a [ClassId],
    /// Cheap batches (wrapped in the `[T/2, 3T/2]` band).
    pub cheap: &'a [Batch],
    /// Piece storage referenced by split batches in `cheap`.
    pub arena: &'a [(JobId, Rational)],
}

/// Places `parts` on machines `base .. base + avail`, streaming every
/// placement once into `sink` (no intermediate schedules — the wraps emit
/// through the same [`PlacementSink`]). `scratch` provides the reusable
/// sequence/run buffers, so a warm build performs no allocations here.
///
/// Returns `Err(())` when the machines or the wrap capacity do not suffice —
/// the caller treats this as a dual rejection (and discards whatever was
/// already emitted).
#[allow(clippy::too_many_arguments)] // mirrors the paper's builder inputs
pub(crate) fn build_nice<S: PlacementSink>(
    inst: &Instance,
    t: Rational,
    mode: CountMode,
    parts: NiceParts<'_>,
    base: usize,
    avail: usize,
    scratch: &mut WrapScratch,
    sink: &mut S,
) -> Result<(), ()> {
    let half = t.half();
    let top = t + half; // 3T/2
    let end = base + avail;
    let mut cursor = base;

    // Step 1: I+exp classes.
    for (&i, &a) in parts.plus_classes.iter().zip(parts.plus_counts) {
        let batch = Batch::full(inst, i);
        debug_assert!(a >= 1);
        if cursor + a > end {
            return Err(());
        }
        let s = Rational::from(batch.setup);
        scratch.clear();
        if a == 1 {
            scratch
                .runs
                .push(GapRun::single(cursor, Rational::ZERO, top));
        } else {
            let first_b = match mode {
                CountMode::AlphaPrime => t,
                CountMode::Gamma => s + half,
            };
            scratch
                .runs
                .push(GapRun::single(cursor, Rational::ZERO, first_b));
            if a > 2 {
                scratch.runs.push(GapRun {
                    first_machine: cursor + 1,
                    count: a - 2,
                    a: s,
                    b: first_b,
                });
            }
            // The last gap absorbs the residue up to 3T/2 (the paper moves
            // the last machine's jobs atop the second-last; extending the
            // final gap is the same schedule up to machine naming).
            scratch.runs.push(GapRun::single(cursor + a - 1, s, top));
        }
        batch.sequence_into(inst, parts.arena, &mut scratch.seq);
        wrap_into(&scratch.seq, &scratch.runs, inst.setups(), sink).map_err(|_| ())?;
        cursor += a;
    }

    // Step 2: I−exp classes in pairs.
    let mut lone_machine = None;
    for pair in parts.minus_classes.chunks(2) {
        if cursor >= end {
            return Err(());
        }
        let mut at = Rational::ZERO;
        for &i in pair {
            sink.place_setup(cursor, at, Rational::from(inst.setup(i)), i);
            at += inst.setup(i);
            for &j in inst.class_jobs(i) {
                let len = Rational::from(inst.job(j).time);
                sink.place_piece(cursor, at, len, j, i);
                at += len;
            }
        }
        if pair.len() == 1 {
            lone_machine = Some(cursor);
        }
        cursor += 1;
    }

    // Step 3: wrap the cheap load between T/2 and 3T/2.
    if parts.cheap.iter().all(|b| !b.has_pieces(inst)) {
        return Ok(());
    }
    scratch.clear();
    if let Some(mu) = lone_machine {
        // The lone I−exp machine (load <= 3T/4 <= T) carries the first gap.
        scratch.runs.push(GapRun::single(mu, t, top));
    }
    if cursor < end {
        scratch.runs.push(GapRun {
            first_machine: cursor,
            count: end - cursor,
            a: half,
            b: top,
        });
    }
    if scratch.runs.is_empty() {
        return Err(());
    }
    for batch in parts.cheap {
        if batch.has_pieces(inst) {
            scratch
                .seq
                .push_setup(batch.class, Rational::from(batch.setup));
            batch.for_each_piece(inst, parts.arena, |j, len| {
                scratch.seq.push_piece(batch.class, j, len);
            });
        }
    }
    wrap_into(&scratch.seq, &scratch.runs, inst.setups(), sink).map_err(|_| ())?;
    Ok(())
}

/// The standalone 3/2-dual approximation for nice instances (Theorem 4).
///
/// Rejects (`None`, certifying `T < OPT`) iff `m·T < L_nice` or `m < m_nice`;
/// also rejects non-nice inputs (`I⁰_exp ≠ ∅`) and guesses below the trivial
/// lower bound. Otherwise returns a preemptive-feasible schedule with
/// makespan `<= 3T/2`.
#[must_use]
pub fn nice_dual(inst: &Instance, t: Rational, mode: CountMode) -> Option<Schedule> {
    if t < Rational::from(inst.max_setup_plus_tmax()) {
        return None;
    }
    let cls = classify(inst, t);
    if !cls.iexp_zero.is_empty() {
        return None;
    }
    let counts: Vec<usize> = cls
        .iexp_plus
        .iter()
        .map(|&i| mode.count(inst, t, i))
        .collect();
    let m_nice: usize = counts.iter().sum::<usize>() + cls.iexp_minus.len().div_ceil(2);
    if m_nice > inst.machines() {
        return None;
    }
    let mut l_nice = Rational::from(inst.total_proc());
    for (&i, &a) in cls.iexp_plus.iter().zip(&counts) {
        l_nice += Rational::from(inst.setup(i) * a as u64);
    }
    for i in cls
        .iexp_minus
        .iter()
        .chain(cls.ichp_plus.iter())
        .chain(cls.ichp_minus.iter())
    {
        l_nice += Rational::from(inst.setup(*i));
    }
    if t * inst.machines() < l_nice {
        return None;
    }
    let cheap: Vec<Batch> = cls
        .ichp_plus
        .iter()
        .chain(cls.ichp_minus.iter())
        .map(|&i| Batch::full(inst, i))
        .collect();
    let parts = NiceParts {
        plus_classes: &cls.iexp_plus,
        plus_counts: &counts,
        minus_classes: &cls.iexp_minus,
        cheap: &cheap,
        arena: &[],
    };
    let mut out = Schedule::new(inst.machines());
    let mut scratch = WrapScratch::default();
    build_nice(
        inst,
        t,
        mode,
        parts,
        0,
        inst.machines(),
        &mut scratch,
        &mut out,
    )
    .ok()?;
    debug_assert!(out.makespan() <= t * Rational::new(3, 2));
    Some(out)
}

/// Convenience for tests: is the instance nice at `t`?
#[must_use]
pub fn is_nice(inst: &Instance, t: Rational) -> bool {
    classify(inst, t).iexp_zero.is_empty()
}

/// `T_min` for the preemptive variant (test helper).
#[cfg(test)]
pub(crate) fn tmin(inst: &Instance) -> Rational {
    bss_instance::LowerBounds::of(inst).tmin(bss_instance::Variant::Preemptive)
}

#[cfg(test)]
mod tests {
    use bss_instance::{InstanceBuilder, Variant};
    use bss_schedule::validate;

    use super::*;

    fn check_at(inst: &Instance, t: Rational, mode: CountMode) -> bool {
        match nice_dual(inst, t, mode) {
            None => false,
            Some(s) => {
                let v = validate(&s, inst, Variant::Preemptive);
                assert!(v.is_empty(), "mode {mode:?}, T={t}: {v:?}");
                assert!(
                    s.makespan() <= t * Rational::new(3, 2),
                    "mode {mode:?}, T={t}: makespan {}",
                    s.makespan()
                );
                true
            }
        }
    }

    #[test]
    fn paper_fig2_instance_accepts_at_2tmin() {
        let inst = bss_gen::paper::fig2_nice_preemptive();
        let t2 = tmin(&inst) * 2u64;
        if is_nice(&inst, t2) {
            assert!(check_at(&inst, t2, CountMode::AlphaPrime));
            assert!(check_at(&inst, t2, CountMode::Gamma));
        }
    }

    #[test]
    fn cheap_only_nice_instance() {
        let mut b = InstanceBuilder::new(3);
        b.add_batch(2, &[5, 5, 5]);
        b.add_batch(1, &[3, 3]);
        let inst = b.build().unwrap();
        let t2 = tmin(&inst) * 2u64;
        assert!(check_at(&inst, t2, CountMode::AlphaPrime));
        assert!(check_at(&inst, t2, CountMode::Gamma));
    }

    #[test]
    fn expensive_plus_classes_wrap_both_modes() {
        let mut b = InstanceBuilder::new(8);
        b.add_batch(60, &[55, 55, 40]); // heavy I+exp at T ≈ 110
        b.add_batch(70, &[50, 50, 20]);
        b.add_batch(10, &[20, 20, 20]);
        let inst = b.build().unwrap();
        for k in [20i128, 24, 30, 40] {
            let t = tmin(&inst) * Rational::new(k, 20);
            if is_nice(&inst, t) {
                let a = check_at(&inst, t, CountMode::AlphaPrime);
                let g = check_at(&inst, t, CountMode::Gamma);
                // Both modes test the same lower bounds up to the machine
                // count; acceptance may differ but both must validate when
                // they accept (asserted inside check_at).
                let _ = (a, g);
            }
        }
    }

    #[test]
    fn odd_minus_classes_share_machine_with_cheap_wrap() {
        let mut b = InstanceBuilder::new(6);
        // Three I−exp classes at T = 100: s > 50, s + P <= 75.
        b.add_batch(60, &[10]);
        b.add_batch(55, &[15]);
        b.add_batch(52, &[8]);
        // Cheap filler.
        b.add_batch(5, &[20, 20, 20, 20]);
        let inst = b.build().unwrap();
        let t = Rational::from(100u64);
        if is_nice(&inst, t) {
            check_at(&inst, t, CountMode::AlphaPrime);
        }
    }

    #[test]
    fn rejects_non_nice_instances() {
        // A class with 3/4 T < s + P < T at T = 100.
        let mut b = InstanceBuilder::new(4);
        b.add_batch(60, &[20]); // s+P = 80 ∈ (75, 100)
        b.add_batch(5, &[10, 10]);
        let inst = b.build().unwrap();
        assert!(!is_nice(&inst, Rational::from(100u64)));
        assert!(nice_dual(&inst, Rational::from(100u64), CountMode::AlphaPrime).is_none());
    }

    #[test]
    fn rejects_below_trivial_bound() {
        let mut b = InstanceBuilder::new(2);
        b.add_batch(10, &[20]);
        let inst = b.build().unwrap();
        assert!(nice_dual(&inst, Rational::from(29u64), CountMode::AlphaPrime).is_none());
    }

    #[test]
    fn randomized_nice_sweep() {
        for seed in 0..25 {
            let inst = bss_gen::uniform(50, 6, 4, seed);
            let lo = tmin(&inst);
            for k in [20i128, 25, 32, 40] {
                let t = lo * Rational::new(k, 20);
                if is_nice(&inst, t) {
                    check_at(&inst, t, CountMode::AlphaPrime);
                    check_at(&inst, t, CountMode::Gamma);
                }
            }
        }
    }

    /// Theorem-4 soundness cross-check on tiny instances: whenever the exact
    /// optimum is <= T (verified by brute force on the *non-preemptive*
    /// relaxation upper bound), the nice dual must accept.
    #[test]
    fn acceptance_at_generous_guesses() {
        for seed in 0..20 {
            let inst = bss_gen::small_batches(30, 3, seed);
            let t = tmin(&inst) * 2u64;
            if is_nice(&inst, t) {
                assert!(
                    check_at(&inst, t, CountMode::AlphaPrime),
                    "2·Tmin must be accepted for nice instances (seed {seed})"
                );
            }
        }
    }
}
