//! The non-preemptive 3/2-dual approximation (Theorem 9, Algorithm 6).
//!
//! All arithmetic is integral: the guess `T`, all split points (splits happen
//! at machine border `T`) and all loads are integers.
//!
//! The four steps of Algorithm 6, following Appendix D and Figures 10–13:
//!
//! 1. schedule `L = { j : s_j's class setup + t_j > T/2 }` — expensive
//!    classes wrapped *preemptively* over `α_i` machines, each big job
//!    (`J⁺`) on its own machine, borderline cheap jobs (`K`) wrapped
//!    preemptively per class;
//! 2. fill the leftover jobs `C'_i = C_i \ L` of each cheap class onto that
//!    class's own machines (no new setups), splitting at border `T`;
//! 3. place the remaining batches greedily onto machines with load `< T`,
//!    never splitting, letting items cross the border;
//! 4. repair: replace each split's first piece by its integral parent
//!    (removing the other pieces), then move every border-crossing step-3
//!    item under the next step-3 item on a later machine, adding a setup
//!    when the moved item is a job.
//!
//! The result is non-preemptive with makespan `<= 3T/2`.

use bss_instance::{ClassId, Instance, JobId};
use bss_rational::Rational;
use bss_schedule::Schedule;

use crate::workspace::DualWorkspace;
use crate::Trace;

/// The `O(n)` dual test of Theorem 9: `true` iff `T` is accepted.
#[must_use]
pub fn accepts(inst: &Instance, t: u64) -> bool {
    if t < inst.max_setup_plus_tmax() {
        return false;
    }
    let mut m_prime: u64 = 0;
    let mut l_nonp: i128 = inst.total_proc() as i128;
    for i in 0..inst.num_classes() {
        let s = inst.setup(i);
        let p = inst.class_proc(i);
        let mi: u64 = if 2 * s > t {
            // expensive: α_i = ⌈P_i / (T - s_i)⌉
            p.div_ceil(t - s)
        } else {
            let mut big = 0u64;
            let mut pk = 0u64;
            for &j in inst.class_jobs(i) {
                let tj = inst.job(j).time;
                if 2 * tj > t {
                    big += 1;
                } else if 2 * (s + tj) > t {
                    pk += tj;
                }
            }
            big + pk.div_ceil(t - s)
        };
        m_prime += mi;
        l_nonp += (mi * s) as i128;
        let xi = p as i128 - (mi as i128) * ((t - s) as i128);
        if xi > 0 {
            l_nonp += s as i128;
        }
    }
    m_prime <= inst.machines() as u64 && (inst.machines() as i128) * (t as i128) >= l_nonp
}

/// One placed item on a machine stack (items are contiguous from time 0).
#[derive(Debug, Clone, Copy)]
struct MItem {
    /// `None` = setup, `Some(j)` = piece of job `j`.
    job: Option<JobId>,
    class: ClassId,
    len: u64,
    /// Global placement sequence number (drives the step-4 repair order).
    seq: usize,
    /// Placed by step 3 (candidate for the border-crossing move).
    step3: bool,
}

/// Machine stacks plus bookkeeping.
struct Builder<'a> {
    inst: &'a Instance,
    t: u64,
    machines: Vec<Vec<MItem>>,
    loads: Vec<u64>,
    seq: usize,
}

impl<'a> Builder<'a> {
    fn new(inst: &'a Instance, t: u64) -> Self {
        Builder {
            inst,
            t,
            machines: Vec::new(),
            loads: Vec::new(),
            seq: 0,
        }
    }

    fn open_machine(&mut self) -> usize {
        self.machines.push(Vec::new());
        self.loads.push(0);
        self.machines.len() - 1
    }

    fn push(&mut self, u: usize, job: Option<JobId>, class: ClassId, len: u64, step3: bool) {
        debug_assert!(len > 0);
        let item = MItem {
            job,
            class,
            len,
            seq: self.seq,
            step3,
        };
        self.seq += 1;
        self.machines[u].push(item);
        self.loads[u] += len;
    }

    /// Preemptive per-class wrap until border `T` with one setup per machine
    /// (used for expensive classes and for `C_i ∩ K`). Returns the machines
    /// used.
    fn wrap_class(&mut self, class: ClassId, jobs: &[JobId]) -> Vec<usize> {
        let s = self.inst.setup(class);
        let mut used = Vec::new();
        let mut u = self.open_machine();
        self.push(u, None, class, s, false);
        used.push(u);
        for &j in jobs {
            let mut rem = self.inst.job(j).time;
            while rem > 0 {
                let avail = self.t - self.loads[u];
                if rem <= avail {
                    self.push(u, Some(j), class, rem, false);
                    rem = 0;
                } else {
                    if avail > 0 {
                        self.push(u, Some(j), class, avail, false);
                        rem -= avail;
                    }
                    u = self.open_machine();
                    self.push(u, None, class, s, false);
                    used.push(u);
                }
            }
        }
        used
    }

    fn to_schedule(&self) -> Schedule {
        let mut s = Schedule::new(self.inst.machines());
        for (u, stack) in self.machines.iter().enumerate() {
            let mut at = Rational::ZERO;
            for item in stack {
                let len = Rational::from(item.len);
                match item.job {
                    None => s.push_setup(u, at, len, item.class),
                    Some(j) => s.push_piece(u, at, len, j, item.class),
                }
                at += len;
            }
        }
        s
    }
}

/// The 3/2-dual builder (Algorithm 6): `None` = rejected (`T < OPT`),
/// `Some(schedule)` is non-preemptive with makespan `<= 3T/2`. Runs in
/// `O(n)` up to the (rare) repair moves of step 4.
#[must_use]
pub fn dual(inst: &Instance, t: u64, trace: &mut Trace) -> Option<Schedule> {
    dual_in(&mut DualWorkspace::new(), inst, t, trace)
}

/// [`dual`] on a reusable workspace (the step-4 repair's per-job buffers are
/// borrowed from `ws`).
#[must_use]
pub fn dual_in(
    ws: &mut DualWorkspace,
    inst: &Instance,
    t: u64,
    trace: &mut Trace,
) -> Option<Schedule> {
    if !accepts(inst, t) {
        return None;
    }
    ws.prepare_for(inst);
    let mut b = Builder::new(inst, t);
    let c = inst.num_classes();

    // Per-class job partition: J+ (t_j > T/2), K (borderline), C' (light).
    let mut big: Vec<Vec<JobId>> = vec![Vec::new(); c];
    let mut borderline: Vec<Vec<JobId>> = vec![Vec::new(); c];
    let mut light: Vec<Vec<JobId>> = vec![Vec::new(); c];
    for i in 0..c {
        let s = inst.setup(i);
        if 2 * s > t {
            continue; // expensive classes are wrapped whole
        }
        for &j in inst.class_jobs(i) {
            let tj = inst.job(j).time;
            if 2 * tj > t {
                big[i].push(j);
            } else if 2 * (s + tj) > t {
                borderline[i].push(j);
            } else {
                light[i].push(j);
            }
        }
    }

    // Step 1: schedule L.
    let mut fillable: Vec<Vec<usize>> = vec![Vec::new(); c];
    for i in 0..c {
        let s = inst.setup(i);
        if 2 * s > t {
            b.wrap_class(i, inst.class_jobs(i));
        } else {
            for &j in &big[i] {
                let u = b.open_machine();
                b.push(u, None, i, s, false);
                b.push(u, Some(j), i, inst.job(j).time, false);
                fillable[i].push(u);
            }
            if !borderline[i].is_empty() {
                let used = b.wrap_class(i, &borderline[i]);
                fillable[i].push(*used.last().expect("wrap uses >= 1 machine"));
            }
        }
    }
    if b.machines.len() > inst.machines() {
        return None; // defensive; excluded by the m' test
    }
    trace.snap("step 1: schedule L", &b.to_schedule());

    // Step 2: fill each cheap class's light jobs onto its own machines,
    // splitting at border T.
    let mut leftover: Vec<Vec<(JobId, u64)>> = vec![Vec::new(); c];
    for i in 0..c {
        let mut queue: std::collections::VecDeque<(JobId, u64)> =
            light[i].iter().map(|&j| (j, inst.job(j).time)).collect();
        for &u in &fillable[i] {
            while let Some(&(j, rem)) = queue.front() {
                let avail = b.t - b.loads[u];
                if avail == 0 {
                    break;
                }
                if rem <= avail {
                    b.push(u, Some(j), i, rem, false);
                    queue.pop_front();
                } else {
                    b.push(u, Some(j), i, avail, false);
                    queue.front_mut().expect("non-empty").1 = rem - avail;
                    break;
                }
            }
        }
        leftover[i] = queue.into_iter().collect();
    }
    trace.snap("step 2: fill own machines", &b.to_schedule());

    // Step 3: remaining batches greedily, never splitting, items may cross T.
    let mut q: std::collections::VecDeque<MItem> = std::collections::VecDeque::new();
    for (i, left) in leftover.iter().enumerate() {
        if left.iter().map(|&(_, r)| r).sum::<u64>() > 0 {
            q.push_back(MItem {
                job: None,
                class: i,
                len: inst.setup(i),
                seq: 0,
                step3: true,
            });
            for &(j, rem) in left {
                q.push_back(MItem {
                    job: Some(j),
                    class: i,
                    len: rem,
                    seq: 0,
                    step3: true,
                });
            }
        }
    }
    let used_now = b.machines.len();
    let mut u = 0usize;
    while let Some(item) = q.front().copied() {
        if u >= b.machines.len() {
            if b.machines.len() >= inst.machines() {
                return None; // defensive; excluded by the load test
            }
            b.open_machine();
        }
        if b.loads[u] >= b.t {
            u += 1;
            continue;
        }
        q.pop_front();
        b.push(u, item.job, item.class, item.len, true);
        let _ = used_now;
    }
    trace.snap("step 3: greedy fill", &b.to_schedule());

    // Step 4a: make jobs integral — replace each split's first-placed piece
    // (smallest sequence number) by the parent job and remove the other
    // pieces. Two passes over the stacks with per-job min-seq/count buffers
    // from the workspace: `O(n)` total instead of a rescan of every machine
    // per split job, and no hash map.
    // `prepare_for` cleared both buffers, so resize initializes every slot.
    ws.job_min_seq.resize(inst.num_jobs(), usize::MAX);
    ws.job_count.resize(inst.num_jobs(), 0);
    for stack in &b.machines {
        for item in stack {
            if let Some(j) = item.job {
                ws.job_count[j] += 1;
                if item.seq < ws.job_min_seq[j] {
                    ws.job_min_seq[j] = item.seq;
                }
            }
        }
    }
    for u in 0..b.machines.len() {
        let mut k = 0;
        while k < b.machines[u].len() {
            let item = b.machines[u][k];
            let Some(j) = item.job else {
                k += 1;
                continue;
            };
            if ws.job_count[j] < 2 {
                k += 1;
            } else if item.seq == ws.job_min_seq[j] {
                let full = inst.job(j).time;
                b.loads[u] += full - item.len;
                b.machines[u][k].len = full;
                k += 1;
            } else {
                b.loads[u] -= item.len;
                b.machines[u].remove(k);
            }
        }
    }

    // Step 4b: machine by machine in fill order, move a border-crossing last
    // step-3 item below the next machine's step-3 run (the paper: "q′ and all
    // jobs above q′ are shifted up … s_i followed by q is placed at the free
    // place below q′"). A setup that *ends exactly on* the border also moves:
    // its jobs continued on the next machine. Each machine receives at most
    // one insertion (≤ s + t_q ≤ T) and passes on its own crossing item, so
    // loads stay ≤ 3T/2.
    let step3_machines: Vec<usize> = (0..b.machines.len())
        .filter(|&u| b.machines[u].iter().any(|i| i.step3))
        .collect();
    for (idx, &mu) in step3_machines.iter().enumerate() {
        let Some(&last) = b.machines[mu].last() else {
            continue;
        };
        if !last.step3 {
            continue;
        }
        let end = b.loads[mu]; // stacks are contiguous from 0
        let crosses =
            end > b.t || (last.job.is_none() && end == b.t && idx + 1 < step3_machines.len());
        if !crosses {
            continue;
        }
        let item = match step3_machines.get(idx + 1) {
            Some(&tu) => {
                let item = b.machines[mu].pop().expect("non-empty");
                b.loads[mu] -= item.len;
                let mut insert_at = b.machines[tu]
                    .iter()
                    .position(|i| i.step3)
                    .expect("target has step-3 items");
                if item.job.is_some() {
                    let s = inst.setup(item.class);
                    let setup = MItem {
                        job: None,
                        class: item.class,
                        len: s,
                        seq: b.seq,
                        step3: false,
                    };
                    b.seq += 1;
                    b.machines[tu].insert(insert_at, setup);
                    b.loads[tu] += s;
                    insert_at += 1;
                }
                b.loads[tu] += item.len;
                b.machines[tu].insert(insert_at, item);
                continue;
            }
            None => {
                // The chain's final machine: its crossing item escapes to an
                // empty machine (it exists whenever it is needed — the
                // capacity test guarantees R <= (m - m') T).
                if b.loads[mu] <= b.t + b.t / 2 {
                    continue; // already within 3T/2; nothing to do
                }
                let item = b.machines[mu].pop().expect("non-empty");
                b.loads[mu] -= item.len;
                item
            }
        };
        let empty = (0..b.machines.len())
            .find(|&u| b.machines[u].is_empty())
            .or_else(|| {
                if b.machines.len() < inst.machines() {
                    Some(b.open_machine())
                } else {
                    None
                }
            });
        let Some(eu) = empty else {
            return None; // defensive: excluded by the load test
        };
        let class = item.class;
        if item.job.is_some() {
            let s = inst.setup(class);
            let setup = MItem {
                job: None,
                class,
                len: s,
                seq: b.seq,
                step3: false,
            };
            b.seq += 1;
            b.loads[eu] += s;
            b.machines[eu].push(setup);
        }
        b.loads[eu] += item.len;
        b.machines[eu].push(item);
    }

    // Coverage repair for exact-T fills (a step-3 run can open naked when the
    // previous machine's last item landed exactly on T and nothing crossed).
    for u in 0..b.machines.len() {
        let mut configured: Option<ClassId> = None;
        let mut fix: Option<(usize, ClassId)> = None;
        for (k, item) in b.machines[u].iter().enumerate() {
            match item.job {
                None => configured = Some(item.class),
                Some(_) => {
                    if configured != Some(item.class) {
                        fix = Some((k, item.class));
                        break;
                    }
                }
            }
        }
        if let Some((k, class)) = fix {
            let s = inst.setup(class);
            let setup = MItem {
                job: None,
                class,
                len: s,
                seq: b.seq,
                step3: false,
            };
            b.seq += 1;
            b.machines[u].insert(k, setup);
            b.loads[u] += s;
        }
    }

    // Drop unnecessary trailing setups.
    for u in 0..b.machines.len() {
        while matches!(b.machines[u].last(), Some(i) if i.job.is_none()) {
            let it = b.machines[u].pop().expect("non-empty");
            b.loads[u] -= it.len;
        }
    }

    let schedule = b.to_schedule();
    trace.snap("step 4: repaired", &schedule);
    debug_assert!(
        schedule.makespan() <= Rational::from(3 * t).half(),
        "makespan {} exceeds 3T/2 at T={t}",
        schedule.makespan()
    );
    Some(schedule)
}

#[cfg(test)]
mod tests {
    use bss_instance::{InstanceBuilder, LowerBounds, Variant};
    use bss_schedule::validate;

    use super::*;

    fn tmin_int(inst: &Instance) -> u64 {
        LowerBounds::of(inst).tmin(Variant::NonPreemptive).ceil() as u64
    }

    fn check_at(inst: &Instance, t: u64) -> bool {
        match dual(inst, t, &mut Trace::disabled()) {
            None => false,
            Some(s) => {
                let v = validate(&s, inst, Variant::NonPreemptive);
                assert!(v.is_empty(), "T={t}: {v:?}");
                assert!(
                    s.makespan() <= Rational::from(3 * t).half(),
                    "T={t}: makespan {}",
                    s.makespan()
                );
                true
            }
        }
    }

    #[test]
    fn accepts_at_twice_tmin() {
        for seed in 0..25 {
            let inst = bss_gen::uniform(60, 8, 4, seed);
            assert!(check_at(&inst, 2 * tmin_int(&inst)), "seed {seed}");
        }
    }

    #[test]
    fn rejects_tiny_guesses() {
        let mut b = InstanceBuilder::new(2);
        b.add_batch(10, &[20, 20]);
        let inst = b.build().unwrap();
        assert!(!accepts(&inst, 29)); // below s + tmax = 30
    }

    #[test]
    fn paper_figure10_walkthrough() {
        let inst = bss_gen::paper::fig10_nonpreemptive();
        let t = 2 * tmin_int(&inst);
        let mut trace = Trace::enabled();
        let s = dual(&inst, t, &mut trace).expect("accepted");
        assert!(validate(&s, &inst, Variant::NonPreemptive).is_empty());
        let labels: Vec<&str> = trace.steps().iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels.len(), 4, "{labels:?}");
    }

    #[test]
    fn step_boundaries_feasible_variants() {
        // All jobs land exactly on borders: stresses exact-T handling.
        let mut b = InstanceBuilder::new(4);
        b.add_batch(5, &[45, 45, 45, 45]); // fills machines exactly at T=50?
        b.add_batch(5, &[20, 20, 20]);
        let inst = b.build().unwrap();
        for t in [50u64, 60, 75, 100, 150, 200] {
            check_at(&inst, t);
        }
    }

    #[test]
    fn expensive_classes_wrap() {
        let mut b = InstanceBuilder::new(6);
        b.add_batch(60, &[30, 30, 30, 30]); // expensive at T <= 120
        b.add_batch(10, &[5, 5]);
        let inst = b.build().unwrap();
        let t = 2 * tmin_int(&inst);
        check_at(&inst, t);
        // Also at tight T values.
        for t in tmin_int(&inst)..tmin_int(&inst) + 30 {
            check_at(&inst, t);
        }
    }

    #[test]
    fn borderline_k_jobs() {
        // Cheap class with jobs pushing s + t over T/2.
        let mut b = InstanceBuilder::new(4);
        b.add_batch(20, &[40, 38, 35, 10, 8]); // at T=100: K = {40, 38, 35}
        b.add_batch(5, &[12, 12, 12]);
        let inst = b.build().unwrap();
        for t in [100u64, 110, 130, 160] {
            check_at(&inst, t);
        }
    }

    #[test]
    fn randomized_sweep_validates() {
        for seed in 0..20 {
            let inst = bss_gen::uniform(50, 7, 4, seed);
            let lo = tmin_int(&inst);
            for t in [lo, lo + lo / 4, lo + lo / 2, 2 * lo] {
                check_at(&inst, t);
            }
        }
        for seed in 0..10 {
            let inst = bss_gen::small_batches(60, 5, seed);
            let lo = tmin_int(&inst);
            for t in [lo, lo + 1, lo + 2, 2 * lo] {
                check_at(&inst, t);
            }
        }
    }

    #[test]
    fn single_machine_everything() {
        let mut b = InstanceBuilder::new(1);
        b.add_batch(3, &[4, 5]);
        b.add_batch(2, &[6]);
        let inst = b.build().unwrap();
        // N = 20: accepted at T = 20.
        assert!(check_at(&inst, 20));
    }

    /// Monotone acceptance is not required for correctness, but the load and
    /// machine tests are monotone — document this with a sweep.
    #[test]
    fn acceptance_monotone_on_random_instances() {
        for seed in 0..10 {
            let inst = bss_gen::uniform(40, 6, 3, seed);
            let lo = tmin_int(&inst);
            let mut last = false;
            for t in (lo.saturating_sub(5))..(2 * lo + 5) {
                let now = accepts(&inst, t);
                assert!(!last || now, "seed {seed}, t {t}");
                last = now;
            }
        }
    }
}
