//! The non-preemptive 3/2-dual approximation (Theorem 9, Algorithm 6).
//!
//! All arithmetic is integral: the guess `T`, all split points (splits happen
//! at machine border `T`) and all loads are integers.
//!
//! The four steps of Algorithm 6, following Appendix D and Figures 10–13:
//!
//! 1. schedule `L = { j : s_j's class setup + t_j > T/2 }` — expensive
//!    classes wrapped *preemptively* over `α_i` machines, each big job
//!    (`J⁺`) on its own machine, borderline cheap jobs (`K`) wrapped
//!    preemptively per class;
//! 2. fill the leftover jobs `C'_i = C_i \ L` of each cheap class onto that
//!    class's own machines (no new setups), splitting at border `T`;
//! 3. place the remaining batches greedily onto machines with load `< T`,
//!    never splitting, letting items cross the border;
//! 4. repair: replace each split's first piece by its integral parent
//!    (removing the other pieces), then move every border-crossing step-3
//!    item under the next step-3 item on a later machine, adding a setup
//!    when the moved item is a job.
//!
//! The result is non-preemptive with makespan `<= 3T/2`.
//!
//! Every buffer of the build — the per-class big/borderline/light partition,
//! the fillable-machine lists, the step-3 queue, the machine stacks and the
//! repair maps — lives in the [`DualWorkspace`], so a warm
//! [`dual_into`] performs **zero** heap allocations beyond the output
//! schedule the caller provides.

use bss_instance::{ClassId, Instance, JobId};
use bss_rational::Rational;
use bss_schedule::Schedule;

use crate::workspace::{DualWorkspace, NpClassRange, NpItem};
use crate::Trace;

/// The `O(n)` dual test of Theorem 9: `true` iff `T` is accepted.
#[must_use]
pub fn accepts(inst: &Instance, t: u64) -> bool {
    if t < inst.max_setup_plus_tmax() {
        return false;
    }
    let mut m_prime: u64 = 0;
    let mut l_nonp: i128 = inst.total_proc() as i128;
    for i in 0..inst.num_classes() {
        let s = inst.setup(i);
        let p = inst.class_proc(i);
        let mi: u64 = if 2 * s > t {
            // expensive: α_i = ⌈P_i / (T - s_i)⌉
            p.div_ceil(t - s)
        } else {
            let mut big = 0u64;
            let mut pk = 0u64;
            for &j in inst.class_jobs(i) {
                let tj = inst.job(j).time;
                if 2 * tj > t {
                    big += 1;
                } else if 2 * (s + tj) > t {
                    pk += tj;
                }
            }
            big + pk.div_ceil(t - s)
        };
        m_prime += mi;
        l_nonp += (mi * s) as i128;
        let xi = p as i128 - (mi as i128) * ((t - s) as i128);
        if xi > 0 {
            l_nonp += s as i128;
        }
    }
    m_prime <= inst.machines() as u64 && (inst.machines() as i128) * (t as i128) >= l_nonp
}

/// Machine stacks plus bookkeeping, borrowed from the workspace: the outer
/// vector and every inner stack keep their capacity across builds.
struct Builder<'a> {
    inst: &'a Instance,
    t: u64,
    stacks: &'a mut Vec<Vec<NpItem>>,
    loads: &'a mut Vec<u64>,
    /// Live stacks this build (`stacks[used..]` are warm spares).
    used: usize,
    seq: usize,
}

impl<'a> Builder<'a> {
    fn new(
        inst: &'a Instance,
        t: u64,
        stacks: &'a mut Vec<Vec<NpItem>>,
        loads: &'a mut Vec<u64>,
    ) -> Self {
        Builder {
            inst,
            t,
            stacks,
            loads,
            used: 0,
            seq: 0,
        }
    }

    fn open_machine(&mut self) -> usize {
        if self.used == self.stacks.len() {
            self.stacks.push(Vec::new());
            self.loads.push(0);
        } else {
            self.stacks[self.used].clear();
        }
        self.loads[self.used] = 0;
        self.used += 1;
        self.used - 1
    }

    fn push(&mut self, u: usize, job: Option<JobId>, class: ClassId, len: u64, step3: bool) {
        debug_assert!(len > 0);
        let item = NpItem {
            job,
            class,
            len,
            seq: self.seq,
            step3,
        };
        self.seq += 1;
        self.stacks[u].push(item);
        self.loads[u] += len;
    }

    /// Preemptive per-class wrap until border `T` with one setup per machine
    /// (used for expensive classes and for `C_i ∩ K`). Returns the last
    /// machine used.
    fn wrap_class(&mut self, class: ClassId, jobs: &[JobId]) -> usize {
        let s = self.inst.setup(class);
        let mut u = self.open_machine();
        self.push(u, None, class, s, false);
        for &j in jobs {
            let mut rem = self.inst.job(j).time;
            while rem > 0 {
                let avail = self.t - self.loads[u];
                if rem <= avail {
                    self.push(u, Some(j), class, rem, false);
                    rem = 0;
                } else {
                    if avail > 0 {
                        self.push(u, Some(j), class, avail, false);
                        rem -= avail;
                    }
                    u = self.open_machine();
                    self.push(u, None, class, s, false);
                }
            }
        }
        u
    }

    /// Emits the stacks into `out` (cleared by the caller).
    fn emit_into(&self, out: &mut Schedule) {
        for (u, stack) in self.stacks[..self.used].iter().enumerate() {
            let mut at = Rational::ZERO;
            for item in stack {
                let len = Rational::from(item.len);
                match item.job {
                    None => out.push_setup(u, at, len, item.class),
                    Some(j) => out.push_piece(u, at, len, j, item.class),
                }
                at += len;
            }
        }
    }

    /// A fresh explicit snapshot (trace rendering only — never on the warm
    /// build path).
    fn to_schedule(&self) -> Schedule {
        let mut s = Schedule::new(self.inst.machines());
        self.emit_into(&mut s);
        s
    }
}

/// The 3/2-dual builder (Algorithm 6): `None` = rejected (`T < OPT`),
/// `Some(schedule)` is non-preemptive with makespan `<= 3T/2`. Runs in
/// `O(n)` up to the (rare) repair moves of step 4.
#[must_use]
pub fn dual(inst: &Instance, t: u64, trace: &mut Trace) -> Option<Schedule> {
    dual_in(&mut DualWorkspace::new(), inst, t, trace)
}

/// [`dual`] on a reusable workspace (partitions, machine stacks and repair
/// buffers are all borrowed from `ws`).
#[must_use]
pub fn dual_in(
    ws: &mut DualWorkspace,
    inst: &Instance,
    t: u64,
    trace: &mut Trace,
) -> Option<Schedule> {
    let mut out = Schedule::new(inst.machines());
    dual_into(ws, inst, t, trace, &mut out).then_some(out)
}

/// [`dual_in`] that emits the repaired schedule into a caller-provided `out`
/// (reset at entry). After workspace warm-up a build allocates nothing
/// beyond `out`'s own growth.
///
/// Returns `false` on rejection (`T < OPT`).
#[must_use]
pub fn dual_into(
    ws: &mut DualWorkspace,
    inst: &Instance,
    t: u64,
    trace: &mut Trace,
    out: &mut Schedule,
) -> bool {
    out.reset(inst.machines());
    if !accepts(inst, t) {
        return false;
    }
    ws.prepare_for(inst);
    let c = inst.num_classes();
    let DualWorkspace {
        ref mut np_jobs,
        ref mut np_ranges,
        ref mut np_fillable,
        ref mut np_fill_ranges,
        ref mut np_queue,
        ref mut np_stacks,
        ref mut np_loads,
        ref mut np_step3,
        ref mut job_min_seq,
        ref mut job_count,
        ..
    } = *ws;
    let mut b = Builder::new(inst, t, np_stacks, np_loads);

    // Per-class job partition into the flat workspace buffer:
    // J+ (t_j > T/2), K (borderline), C' (light) — contiguous per class.
    for i in 0..c {
        let s = inst.setup(i);
        let start = np_jobs.len() as u32;
        let mut range = NpClassRange {
            start,
            big_end: start,
            bord_end: start,
            end: start,
        };
        if 2 * s > t {
            np_ranges.push(range); // expensive classes are wrapped whole
            continue;
        }
        for &j in inst.class_jobs(i) {
            if 2 * inst.job(j).time > t {
                np_jobs.push(j);
            }
        }
        range.big_end = np_jobs.len() as u32;
        for &j in inst.class_jobs(i) {
            let tj = inst.job(j).time;
            if 2 * tj <= t && 2 * (s + tj) > t {
                np_jobs.push(j);
            }
        }
        range.bord_end = np_jobs.len() as u32;
        for &j in inst.class_jobs(i) {
            if 2 * (s + inst.job(j).time) <= t {
                np_jobs.push(j);
            }
        }
        range.end = np_jobs.len() as u32;
        np_ranges.push(range);
    }

    // Step 1: schedule L.
    for (i, &r) in np_ranges.iter().enumerate() {
        let fill_start = np_fillable.len() as u32;
        let s = inst.setup(i);
        if 2 * s > t {
            b.wrap_class(i, inst.class_jobs(i));
        } else {
            for &j in &np_jobs[r.start as usize..r.big_end as usize] {
                let u = b.open_machine();
                b.push(u, None, i, s, false);
                b.push(u, Some(j), i, inst.job(j).time, false);
                np_fillable.push(u);
            }
            let borderline = &np_jobs[r.big_end as usize..r.bord_end as usize];
            if !borderline.is_empty() {
                let last = b.wrap_class(i, borderline);
                np_fillable.push(last);
            }
        }
        np_fill_ranges.push((fill_start, np_fillable.len() as u32));
    }
    if b.used > inst.machines() {
        return false; // defensive; excluded by the m' test
    }
    if trace.is_enabled() {
        trace.snap("step 1: schedule L", &b.to_schedule());
    }

    // Step 2: fill each cheap class's light jobs onto its own machines,
    // splitting at border T; what does not fit queues for step 3.
    for i in 0..c {
        let r = np_ranges[i];
        let (fs, fe) = np_fill_ranges[i];
        let lend = r.end as usize;
        let mut k = r.bord_end as usize;
        let mut rem = if k < lend {
            inst.job(np_jobs[k]).time
        } else {
            0
        };
        for &u in &np_fillable[fs as usize..fe as usize] {
            while k < lend {
                let avail = b.t - b.loads[u];
                if avail == 0 {
                    break;
                }
                if rem <= avail {
                    b.push(u, Some(np_jobs[k]), i, rem, false);
                    k += 1;
                    rem = if k < lend {
                        inst.job(np_jobs[k]).time
                    } else {
                        0
                    };
                } else {
                    b.push(u, Some(np_jobs[k]), i, avail, false);
                    rem -= avail;
                    break;
                }
            }
        }
        // Leftovers (with the front job's remaining length) become the
        // step-3 batch of this class.
        if k < lend {
            np_queue.push(NpItem {
                job: None,
                class: i,
                len: inst.setup(i),
                seq: 0,
                step3: true,
            });
            np_queue.push(NpItem {
                job: Some(np_jobs[k]),
                class: i,
                len: rem,
                seq: 0,
                step3: true,
            });
            for &j in &np_jobs[k + 1..lend] {
                np_queue.push(NpItem {
                    job: Some(j),
                    class: i,
                    len: inst.job(j).time,
                    seq: 0,
                    step3: true,
                });
            }
        }
    }
    if trace.is_enabled() {
        trace.snap("step 2: fill own machines", &b.to_schedule());
    }

    // Step 3: remaining batches greedily, never splitting, items may cross T.
    let mut u = 0usize;
    let mut qi = 0usize;
    while qi < np_queue.len() {
        if u >= b.used {
            if b.used >= inst.machines() {
                return false; // defensive; excluded by the load test
            }
            b.open_machine();
        }
        if b.loads[u] >= b.t {
            u += 1;
            continue;
        }
        let item = np_queue[qi];
        qi += 1;
        b.push(u, item.job, item.class, item.len, true);
    }
    if trace.is_enabled() {
        trace.snap("step 3: greedy fill", &b.to_schedule());
    }

    // Step 4a: make jobs integral — replace each split's first-placed piece
    // (smallest sequence number) by the parent job and remove the other
    // pieces. Two passes over the stacks with per-job min-seq/count buffers
    // from the workspace: `O(n)` total instead of a rescan of every machine
    // per split job, and no hash map.
    // `prepare_for` cleared both buffers, so resize initializes every slot.
    job_min_seq.resize(inst.num_jobs(), usize::MAX);
    job_count.resize(inst.num_jobs(), 0);
    for stack in &b.stacks[..b.used] {
        for item in stack {
            if let Some(j) = item.job {
                job_count[j] += 1;
                if item.seq < job_min_seq[j] {
                    job_min_seq[j] = item.seq;
                }
            }
        }
    }
    for u in 0..b.used {
        let mut k = 0;
        while k < b.stacks[u].len() {
            let item = b.stacks[u][k];
            let Some(j) = item.job else {
                k += 1;
                continue;
            };
            if job_count[j] < 2 {
                k += 1;
            } else if item.seq == job_min_seq[j] {
                let full = inst.job(j).time;
                b.loads[u] += full - item.len;
                b.stacks[u][k].len = full;
                k += 1;
            } else {
                b.loads[u] -= item.len;
                b.stacks[u].remove(k);
            }
        }
    }

    // Step 4b: machine by machine in fill order, move a border-crossing last
    // step-3 item below the next machine's step-3 run (the paper: "q′ and all
    // jobs above q′ are shifted up … s_i followed by q is placed at the free
    // place below q′"). A setup that *ends exactly on* the border also moves:
    // its jobs continued on the next machine. Each machine receives at most
    // one insertion (≤ s + t_q ≤ T) and passes on its own crossing item, so
    // loads stay ≤ 3T/2.
    np_step3.clear();
    for u in 0..b.used {
        if b.stacks[u].iter().any(|i| i.step3) {
            np_step3.push(u);
        }
    }
    for idx in 0..np_step3.len() {
        let mu = np_step3[idx];
        let Some(&last) = b.stacks[mu].last() else {
            continue;
        };
        if !last.step3 {
            continue;
        }
        let end = b.loads[mu]; // stacks are contiguous from 0
        let crosses = end > b.t || (last.job.is_none() && end == b.t && idx + 1 < np_step3.len());
        if !crosses {
            continue;
        }
        let item = match np_step3.get(idx + 1) {
            Some(&tu) => {
                let item = b.stacks[mu].pop().expect("non-empty");
                b.loads[mu] -= item.len;
                let mut insert_at = b.stacks[tu]
                    .iter()
                    .position(|i| i.step3)
                    .expect("target has step-3 items");
                if item.job.is_some() {
                    let s = inst.setup(item.class);
                    let setup = NpItem {
                        job: None,
                        class: item.class,
                        len: s,
                        seq: b.seq,
                        step3: false,
                    };
                    b.seq += 1;
                    b.stacks[tu].insert(insert_at, setup);
                    b.loads[tu] += s;
                    insert_at += 1;
                }
                b.loads[tu] += item.len;
                b.stacks[tu].insert(insert_at, item);
                continue;
            }
            None => {
                // The chain's final machine: its crossing item escapes to an
                // empty machine (it exists whenever it is needed — the
                // capacity test guarantees R <= (m - m') T).
                if b.loads[mu] <= b.t + b.t / 2 {
                    continue; // already within 3T/2; nothing to do
                }
                let item = b.stacks[mu].pop().expect("non-empty");
                b.loads[mu] -= item.len;
                item
            }
        };
        let empty = (0..b.used).find(|&u| b.stacks[u].is_empty()).or_else(|| {
            if b.used < inst.machines() {
                Some(b.open_machine())
            } else {
                None
            }
        });
        // Without an empty machine, any machine with room below 3T/2 for
        // the item (plus its setup when it is a job) keeps the bound: the
        // final chain machine is processed last, so the target receives no
        // further insertions. (The capacity test usually guarantees an
        // empty machine, but the load can be exactly tight.)
        let target = empty.or_else(|| {
            let need = item.len + item.job.map_or(0, |_| inst.setup(item.class));
            (0..b.used).find(|&u| b.loads[u] + need <= b.t + b.t / 2)
        });
        let Some(eu) = target else {
            return false; // defensive: excluded by the load test
        };
        let class = item.class;
        if item.job.is_some() {
            let s = inst.setup(class);
            let setup = NpItem {
                job: None,
                class,
                len: s,
                seq: b.seq,
                step3: false,
            };
            b.seq += 1;
            b.loads[eu] += s;
            b.stacks[eu].push(setup);
        }
        b.loads[eu] += item.len;
        b.stacks[eu].push(item);
    }

    // Coverage repair for exact-T fills (a step-3 run can open naked when the
    // previous machine's last item landed exactly on T and nothing crossed).
    for u in 0..b.used {
        let mut configured: Option<ClassId> = None;
        let mut fix: Option<(usize, ClassId)> = None;
        for (k, item) in b.stacks[u].iter().enumerate() {
            match item.job {
                None => configured = Some(item.class),
                Some(_) => {
                    if configured != Some(item.class) {
                        fix = Some((k, item.class));
                        break;
                    }
                }
            }
        }
        if let Some((k, class)) = fix {
            let s = inst.setup(class);
            let setup = NpItem {
                job: None,
                class,
                len: s,
                seq: b.seq,
                step3: false,
            };
            b.seq += 1;
            b.stacks[u].insert(k, setup);
            b.loads[u] += s;
        }
    }

    // Drop unnecessary trailing setups.
    for u in 0..b.used {
        while matches!(b.stacks[u].last(), Some(i) if i.job.is_none()) {
            let it = b.stacks[u].pop().expect("non-empty");
            b.loads[u] -= it.len;
        }
    }

    b.emit_into(out);
    trace.snap("step 4: repaired", out);
    debug_assert!(
        out.makespan() <= Rational::from(3 * t).half(),
        "makespan {} exceeds 3T/2 at T={t}",
        out.makespan()
    );
    true
}

#[cfg(test)]
mod tests {
    use bss_instance::{InstanceBuilder, LowerBounds, Variant};
    use bss_schedule::validate;

    use super::*;

    fn tmin_int(inst: &Instance) -> u64 {
        LowerBounds::of(inst).tmin(Variant::NonPreemptive).ceil() as u64
    }

    fn check_at(inst: &Instance, t: u64) -> bool {
        match dual(inst, t, &mut Trace::disabled()) {
            None => false,
            Some(s) => {
                let v = validate(&s, inst, Variant::NonPreemptive);
                assert!(v.is_empty(), "T={t}: {v:?}");
                assert!(
                    s.makespan() <= Rational::from(3 * t).half(),
                    "T={t}: makespan {}",
                    s.makespan()
                );
                true
            }
        }
    }

    #[test]
    fn accepts_at_twice_tmin() {
        for seed in 0..25 {
            let inst = bss_gen::uniform(60, 8, 4, seed);
            assert!(check_at(&inst, 2 * tmin_int(&inst)), "seed {seed}");
        }
    }

    #[test]
    fn rejects_tiny_guesses() {
        let mut b = InstanceBuilder::new(2);
        b.add_batch(10, &[20, 20]);
        let inst = b.build().unwrap();
        assert!(!accepts(&inst, 29)); // below s + tmax = 30
    }

    #[test]
    fn paper_figure10_walkthrough() {
        let inst = bss_gen::paper::fig10_nonpreemptive();
        let t = 2 * tmin_int(&inst);
        let mut trace = Trace::enabled();
        let s = dual(&inst, t, &mut trace).expect("accepted");
        assert!(validate(&s, &inst, Variant::NonPreemptive).is_empty());
        let labels: Vec<&str> = trace.steps().iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels.len(), 4, "{labels:?}");
    }

    #[test]
    fn step_boundaries_feasible_variants() {
        // All jobs land exactly on borders: stresses exact-T handling.
        let mut b = InstanceBuilder::new(4);
        b.add_batch(5, &[45, 45, 45, 45]); // fills machines exactly at T=50?
        b.add_batch(5, &[20, 20, 20]);
        let inst = b.build().unwrap();
        for t in [50u64, 60, 75, 100, 150, 200] {
            check_at(&inst, t);
        }
    }

    #[test]
    fn expensive_classes_wrap() {
        let mut b = InstanceBuilder::new(6);
        b.add_batch(60, &[30, 30, 30, 30]); // expensive at T <= 120
        b.add_batch(10, &[5, 5]);
        let inst = b.build().unwrap();
        let t = 2 * tmin_int(&inst);
        check_at(&inst, t);
        // Also at tight T values.
        for t in tmin_int(&inst)..tmin_int(&inst) + 30 {
            check_at(&inst, t);
        }
    }

    #[test]
    fn borderline_k_jobs() {
        // Cheap class with jobs pushing s + t over T/2.
        let mut b = InstanceBuilder::new(4);
        b.add_batch(20, &[40, 38, 35, 10, 8]); // at T=100: K = {40, 38, 35}
        b.add_batch(5, &[12, 12, 12]);
        let inst = b.build().unwrap();
        for t in [100u64, 110, 130, 160] {
            check_at(&inst, t);
        }
    }

    #[test]
    fn randomized_sweep_validates() {
        for seed in 0..20 {
            let inst = bss_gen::uniform(50, 7, 4, seed);
            let lo = tmin_int(&inst);
            for t in [lo, lo + lo / 4, lo + lo / 2, 2 * lo] {
                check_at(&inst, t);
            }
        }
        for seed in 0..10 {
            let inst = bss_gen::small_batches(60, 5, seed);
            let lo = tmin_int(&inst);
            for t in [lo, lo + 1, lo + 2, 2 * lo] {
                check_at(&inst, t);
            }
        }
    }

    /// The workspace-reusing `dual_into` is bit-identical to the fresh path,
    /// including when `out` is recycled across guesses and instances.
    #[test]
    fn dual_into_reuse_matches_fresh() {
        let mut ws = DualWorkspace::new();
        let mut out = Schedule::new(1);
        for seed in 0..10 {
            let inst = bss_gen::uniform(50, 7, 4, seed);
            let lo = tmin_int(&inst);
            for t in [lo, lo + lo / 2, 2 * lo] {
                let fresh = dual(&inst, t, &mut Trace::disabled());
                let reused = dual_into(&mut ws, &inst, t, &mut Trace::disabled(), &mut out);
                match fresh {
                    Some(s) => {
                        assert!(reused, "seed {seed} T={t}");
                        assert_eq!(s, out, "seed {seed} T={t}");
                    }
                    None => assert!(!reused, "seed {seed} T={t}"),
                }
            }
        }
    }

    #[test]
    fn single_machine_everything() {
        let mut b = InstanceBuilder::new(1);
        b.add_batch(3, &[4, 5]);
        b.add_batch(2, &[6]);
        let inst = b.build().unwrap();
        // N = 20: accepted at T = 20.
        assert!(check_at(&inst, 20));
    }

    /// Monotone acceptance is not required for correctness, but the load and
    /// machine tests are monotone — document this with a sweep.
    #[test]
    fn acceptance_monotone_on_random_instances() {
        for seed in 0..10 {
            let inst = bss_gen::uniform(40, 6, 3, seed);
            let lo = tmin_int(&inst);
            let mut last = false;
            for t in (lo.saturating_sub(5))..(2 * lo + 5) {
                let now = accepts(&inst, t);
                assert!(!last || now, "seed {seed}, t {t}");
                last = now;
            }
        }
    }
}
