//! Theorem 8: the non-preemptive 3/2-approximation in `O(n log(n + Δ))`.

use bss_budget::{Interrupt, SolveBudget};
use bss_instance::{Instance, LowerBounds, Variant};
use bss_rational::Rational;
use bss_schedule::Schedule;

use crate::search::{integer_search_budgeted, SearchOutcome};
use crate::workspace::DualWorkspace;
use crate::Trace;

use super::{accepts, dual_in};

/// Runs the exact integer binary search over the 3/2-dual of Theorem 9.
///
/// Because all input values are integral and jobs and setups are never
/// preempted, `OPT ∈ N`; the search over `[⌈T_min⌉, 2⌈T_min⌉]` therefore
/// terminates with an accepted `T* <= OPT` and a schedule of makespan
/// `<= 3/2 · T* <= 3/2 · OPT`, after `O(log T_min) ⊆ O(log(n + Δ))` probes
/// of the `O(n)` dual.
///
/// When `m >= n` the trivial optimal schedule (one job and one setup per
/// machine) is returned directly, as the paper assumes `m < n`.
#[must_use]
pub fn three_halves(inst: &Instance) -> SearchOutcome<Schedule> {
    three_halves_in(&mut DualWorkspace::new(), inst)
}

/// [`three_halves`] on a reusable workspace: every probe's builder shares
/// the workspace's repair buffers.
#[must_use]
pub fn three_halves_in(ws: &mut DualWorkspace, inst: &Instance) -> SearchOutcome<Schedule> {
    three_halves_budgeted_in(ws, inst, &SolveBudget::unlimited()).0
}

/// [`three_halves_in`] under a cooperative [`SolveBudget`]: bit-identical
/// when the budget never trips; on interruption the integer search stops at
/// its current (still accepted) right bracket — `2·⌈T_min⌉` at worst, which
/// Theorem 1 guarantees builds — and the interrupt is reported alongside.
#[must_use]
pub fn three_halves_budgeted_in(
    ws: &mut DualWorkspace,
    inst: &Instance,
    budget: &SolveBudget,
) -> (SearchOutcome<Schedule>, Option<Interrupt>) {
    if inst.machines() >= inst.num_jobs() {
        return (trivial_one_job_per_machine(inst), None);
    }
    let t_min = LowerBounds::of(inst).tmin(Variant::NonPreemptive).ceil() as u64;
    // Probe with the O(n) accept test; build the schedule once, at the
    // smallest accepted guess. The builder keeps defensive rejection
    // branches beyond the accept test; if one fires, climb one guess at a
    // time to the next value that builds — jumping straight to the
    // bracket's top would silently forfeit the 3/2-vs-OPT guarantee
    // whenever OPT lies below it. The climb terminates: 2·T_min is
    // accepted and builds (Theorem 1).
    let budgeted = integer_search_budgeted(t_min, 2 * t_min, budget, |t| accepts(inst, t));
    let out = budgeted.outcome;
    let mut accepted = out.accepted;
    let schedule = loop {
        if let Some(s) = dual_in(ws, inst, accepted, &mut Trace::disabled()) {
            break s;
        }
        assert!(
            accepted < 2 * t_min,
            "2*T_min is accepted and builds (Theorem 1)"
        );
        accepted += 1;
    };
    (
        SearchOutcome {
            accepted: Rational::from(accepted),
            schedule,
            rejected: out.rejected.map(Rational::from),
            probes: out.probes,
        },
        budgeted.interrupt,
    )
}

/// [`three_halves_budgeted_in`] with speculative parallel probing: the
/// integer bisection runs as wavefronts on `threads` worker threads (see
/// [`crate::par`]), with bit-identical bracket, probe accounting and
/// interruption points at every thread count (`threads <= 1` *is* the
/// sequential search). The trivial `m >= n` path and the climb-one-guess
/// builder loop are untouched — only the probe ladder goes wide.
#[must_use]
pub fn three_halves_par_budgeted_in(
    ws: &mut DualWorkspace,
    inst: &Instance,
    threads: usize,
    budget: &SolveBudget,
) -> (SearchOutcome<Schedule>, Option<Interrupt>) {
    if threads <= 1 {
        return three_halves_budgeted_in(ws, inst, budget);
    }
    if inst.machines() >= inst.num_jobs() {
        return (trivial_one_job_per_machine(inst), None);
    }
    let t_min = LowerBounds::of(inst).tmin(Variant::NonPreemptive).ceil() as u64;
    let budgeted =
        crate::par::integer_search_par_budgeted(t_min, 2 * t_min, threads, budget, ws, |_, t| {
            accepts(inst, t)
        });
    let out = budgeted.outcome;
    let mut accepted = out.accepted;
    let schedule = loop {
        if let Some(s) = dual_in(ws, inst, accepted, &mut Trace::disabled()) {
            break s;
        }
        assert!(
            accepted < 2 * t_min,
            "2*T_min is accepted and builds (Theorem 1)"
        );
        accepted += 1;
    };
    (
        SearchOutcome {
            accepted: Rational::from(accepted),
            schedule,
            rejected: out.rejected.map(Rational::from),
            probes: out.probes,
        },
        budgeted.interrupt,
    )
}

/// `m >= n`: one machine per job is optimal (`makespan = max_i (s_i +
/// t^(i)_max)`, matching the lower bound of Note 2).
fn trivial_one_job_per_machine(inst: &Instance) -> SearchOutcome<Schedule> {
    let mut s = Schedule::new(inst.machines());
    for j in 0..inst.num_jobs() {
        let job = inst.job(j);
        let setup = Rational::from(inst.setup(job.class));
        s.push_setup(j, Rational::ZERO, setup, job.class);
        s.push_piece(j, setup, Rational::from(job.time), j, job.class);
    }
    let opt = Rational::from(inst.max_setup_plus_tmax());
    debug_assert_eq!(s.makespan(), opt);
    SearchOutcome {
        accepted: opt,
        schedule: s,
        rejected: None,
        probes: 0,
    }
}

#[cfg(test)]
mod tests {
    use bss_instance::InstanceBuilder;
    use bss_schedule::validate;

    use super::*;

    fn check(inst: &Instance) -> (Rational, Rational) {
        let out = three_halves(inst);
        let v = validate(&out.schedule, inst, Variant::NonPreemptive);
        assert!(v.is_empty(), "{v:?}");
        let makespan = out.schedule.makespan();
        assert!(
            makespan <= out.accepted * Rational::new(3, 2),
            "makespan {makespan} > 3/2 · {}",
            out.accepted
        );
        (out.accepted, makespan)
    }

    #[test]
    fn trivial_when_m_ge_n() {
        let mut b = InstanceBuilder::new(10);
        b.add_batch(5, &[7, 3]);
        b.add_batch(2, &[9]);
        let inst = b.build().unwrap();
        let (accepted, makespan) = check(&inst);
        assert_eq!(makespan, Rational::from(12u64)); // max(s + t) = 5 + 7
        assert_eq!(accepted, makespan);
    }

    #[test]
    fn uniform_suite() {
        for seed in 0..20 {
            check(&bss_gen::uniform(60, 8, 4, seed));
        }
    }

    #[test]
    fn paper_fig10_instance() {
        check(&bss_gen::paper::fig10_nonpreemptive());
    }

    #[test]
    fn wide_delta_instances() {
        for seed in 0..5 {
            check(&bss_gen::wide_delta(80, 10, 4, 1 << 24, seed));
        }
    }

    #[test]
    fn accepted_value_is_integral_lower_bound() {
        for seed in 0..10 {
            let inst = bss_gen::uniform(50, 6, 3, seed);
            let out = three_halves(&inst);
            assert!(out.accepted.is_integer());
            // T* is accepted and T*-1 (if probed) rejected: the rejection
            // certificate is exactly accepted - 1 when a search happened.
            if let Some(rej) = out.rejected {
                assert_eq!(rej + 1u64, out.accepted);
            }
        }
    }
}
