//! The non-preemptive variant `P|setup=s_i|Cmax`.
//!
//! * [`accepts`] / [`dual`]: the 3/2-dual approximation of Theorem 9
//!   (Algorithm 6, Appendix D) — `O(n)` per guess.
//! * [`three_halves`]: Theorem 8 — exact integer binary search over the dual,
//!   `O(n log(n + Δ))` total, a clean 3/2-approximation because the
//!   non-preemptive optimum is integral.

mod dual;
mod search;

pub use dual::{accepts, dual, dual_in, dual_into};
pub use search::{
    three_halves, three_halves_budgeted_in, three_halves_in, three_halves_par_budgeted_in,
};
