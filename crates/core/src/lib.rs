//! Near-linear approximation algorithms for scheduling with batch setup
//! times — the algorithms of Deppert & Jansen (SPAA 2019).
//!
//! For each of the three problem variants ([`bss_instance::Variant`]) this
//! crate provides the paper's full algorithm stack:
//!
//! | result | algorithm | entry point |
//! |---|---|---|
//! | Theorem 1 | 2-approximation, `O(n)` | [`two_approx`] |
//! | Theorem 2 | `(3/2+ε)`-approx, `O(n log 1/ε)` | [`search::epsilon_search`] over the duals |
//! | Theorem 7 | splittable 3/2-dual, `O(n)` | [`splittable::dual`] |
//! | Theorem 3 | splittable 3/2, `O(n + c log(c+m))` | [`splittable::class_jumping`] |
//! | Theorems 4–5 | preemptive 3/2-dual, `O(n)` | [`preemptive::dual`] |
//! | Theorem 6 | preemptive 3/2, `O(n log(c+m))` | [`preemptive::class_jumping`] |
//! | Theorem 9 | non-preemptive 3/2-dual, `O(n)` | [`nonpreemptive::dual`] |
//! | Theorem 8 | non-preemptive 3/2, `O(n log(n+Δ))` | [`nonpreemptive::three_halves`] |
//!
//! The one-stop entry point is [`solve`] with an [`Algorithm`] selector.
//!
//! All internal arithmetic is exact ([`bss_rational::Rational`]); every
//! algorithm's output is checked against the strict validators of
//! [`bss_schedule`] in this crate's tests.
//!
//! # Anytime solving
//!
//! Every solve can run under a [`SolveBudget`] — a wall-clock deadline, a
//! probe budget, and/or a cooperative [`CancelToken`] — through
//! [`solve_budgeted`] (and the `_budgeted` variants of the other entry
//! points). An interrupted solve degrades gracefully: it returns the best
//! certified solution reachable at wind-down (the search's current accepted
//! bracket, or the `O(n)` Theorem-1 fallback) with an honestly widened
//! [`Solution::ratio_bound`] and a [`Completion`] saying what happened.
//! Solver panics are caught at the `_budgeted` boundaries and surface as
//! typed [`SolveError`]s; an unlimited budget is bit-identical to the plain
//! entry points.
//!
//! # Error contract
//!
//! Audited policy for every `unwrap`/`expect`/`panic!` reachable from the
//! public `solve*` surface:
//!
//! * **Input-dependent failures** are typed, never panics. The only such
//!   family in this crate is [`bss_rational::Rational`] overflow on
//!   astronomically scaled inputs; its panic messages all contain
//!   `overflow`, which the `_budgeted` boundaries map to
//!   [`SolveError::Overflow`].
//! * **Proof-backed invariants** (an `expect` citing the theorem that makes
//!   the case impossible, e.g. *"Theorem 7: expensive template capacity
//!   suffices"* or *"2·T_min is accepted (Theorem 1)"*) stay as panics: a
//!   violation is a solver bug, not a caller error. The `_budgeted` entry
//!   points isolate them via `catch_unwind`, reset the workspace so no
//!   poisoned state leaks into the next solve, and report
//!   [`SolveError::Panicked`] — the fault-injection suite in `bss-chaos`
//!   checks both the isolation and the workspace reset.

pub mod classify;
pub mod nonpreemptive;
pub mod par;
pub mod preemptive;
pub mod search;
pub mod splittable;
pub mod two_approx;

mod api;
mod problem;
mod seqdep_bridge;
mod trace;
mod workspace;

pub use api::{
    solve, solve_budgeted, solve_budgeted_with, solve_par, solve_par_budgeted,
    solve_par_budgeted_with, solve_par_with, solve_traced, solve_traced_with, solve_warm,
    solve_warm_with, solve_with, Algorithm, Completion, ScheduleRepr, Solution, SolveError,
    WarmStart,
};
pub use bss_budget::{CancelToken, Interrupt, SolveBudget};
pub use par::{
    epsilon_search_between_par, epsilon_search_between_par_budgeted,
    epsilon_search_between_par_stats, epsilon_search_par, integer_search_par,
    integer_search_par_budgeted, ParSearchStats,
};
pub use problem::{
    solve_problem, solve_problem_budgeted, solve_problem_par, solve_problem_par_budgeted,
    solve_problem_par_with_budget, solve_problem_with_budget, BssProblem, DirectSolve, Problem,
};
pub use search::{epsilon_search_between_warm, WarmStats};
pub use seqdep_bridge::{
    solve_seqdep, solve_seqdep_budgeted, solve_seqdep_budgeted_with, solve_seqdep_par,
    solve_seqdep_par_budgeted, solve_seqdep_with, SeqDepProblem,
};
pub use trace::Trace;
pub use workspace::DualWorkspace;
