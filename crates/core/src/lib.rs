//! Near-linear approximation algorithms for scheduling with batch setup
//! times — the algorithms of Deppert & Jansen (SPAA 2019).
//!
//! For each of the three problem variants ([`bss_instance::Variant`]) this
//! crate provides the paper's full algorithm stack:
//!
//! | result | algorithm | entry point |
//! |---|---|---|
//! | Theorem 1 | 2-approximation, `O(n)` | [`two_approx`] |
//! | Theorem 2 | `(3/2+ε)`-approx, `O(n log 1/ε)` | [`search::epsilon_search`] over the duals |
//! | Theorem 7 | splittable 3/2-dual, `O(n)` | [`splittable::dual`] |
//! | Theorem 3 | splittable 3/2, `O(n + c log(c+m))` | [`splittable::class_jumping`] |
//! | Theorems 4–5 | preemptive 3/2-dual, `O(n)` | [`preemptive::dual`] |
//! | Theorem 6 | preemptive 3/2, `O(n log(c+m))` | [`preemptive::class_jumping`] |
//! | Theorem 9 | non-preemptive 3/2-dual, `O(n)` | [`nonpreemptive::dual`] |
//! | Theorem 8 | non-preemptive 3/2, `O(n log(n+Δ))` | [`nonpreemptive::three_halves`] |
//!
//! The one-stop entry point is [`solve`] with an [`Algorithm`] selector.
//!
//! All internal arithmetic is exact ([`bss_rational::Rational`]); every
//! algorithm's output is checked against the strict validators of
//! [`bss_schedule`] in this crate's tests.

pub mod classify;
pub mod nonpreemptive;
pub mod preemptive;
pub mod search;
pub mod splittable;
pub mod two_approx;

mod api;
mod problem;
mod seqdep_bridge;
mod trace;
mod workspace;

pub use api::{
    solve, solve_traced, solve_traced_with, solve_with, Algorithm, ScheduleRepr, Solution,
};
pub use problem::{solve_problem, BssProblem, DirectSolve, Problem};
pub use seqdep_bridge::{solve_seqdep, solve_seqdep_with, SeqDepProblem};
pub use trace::Trace;
pub use workspace::DualWorkspace;
