//! The variant-generic solve surface: the [`Problem`] trait and its driver.
//!
//! Every solver in this workspace has the same dual-approximation shape —
//! an instance-only lower bound `T_min` seeding a search window, a cheap
//! accept/reject *probe* at a guess `T`, and a *builder* that turns an
//! accepted guess into a schedule of makespan `<= ρ·T`. The [`Problem`]
//! trait captures exactly that shape; [`solve_problem`] drives any
//! implementor through the four [`Algorithm`] modes (direct fallback,
//! ε-search, the problem's best direct search, and the portfolio), producing
//! the same [`Solution`] type everywhere.
//!
//! Implementors:
//!
//! * [`BssProblem`] — the paper's three batch-setup variants
//!   ([`bss_instance::Variant`]); probes certify `T < OPT` (the proven
//!   duals), ratios are the theorems' 3/2 and 2.
//! * [`crate::SeqDepProblem`] — sequence-dependent setups. The uniform
//!   special case `s(c, c') = s(c')` reduces bit-exactly to a batch-setup
//!   instance and inherits the non-preemptive guarantees; the general case
//!   runs a heuristic dual whose rejections certify nothing (and say so via
//!   [`Problem::probe_certifies`]).
//!
//! # Guarantee accounting
//!
//! A [`Solution`] always satisfies `makespan <= ratio_bound · accepted` —
//! for the proven duals because the theorem says so, for heuristic duals
//! because the builder enforces the ceiling constructively. What differs is
//! the *certificate*: only problems whose probes certify rejections may
//! export a rejected guess as a lower bound on `OPT`; heuristic problems
//! fall back to the instance-only `T_min`. The portfolio keeps the primary
//! member's `(accepted, ratio_bound)` pair (the winner's makespan is bounded
//! by the primary's), takes the best makespan, and merges certificates by
//! maximum — the same accounting for every problem.

use std::panic::{catch_unwind, AssertUnwindSafe};

use bss_budget::{Interrupt, SolveBudget};
use bss_instance::{Instance, LowerBounds, Variant};
use bss_rational::Rational;

use crate::api::{finish, Algorithm, Completion, ScheduleRepr, Solution, SolveError};
use crate::search::epsilon_search_between_budgeted;
use crate::workspace::DualWorkspace;
use crate::{nonpreemptive, preemptive, splittable, two_approx, Trace};

/// Outcome of a problem's best direct search ([`Algorithm::ThreeHalves`]).
#[derive(Debug)]
pub struct DirectSolve {
    /// The schedule, in the solver's native representation.
    pub repr: ScheduleRepr,
    /// The accepted guess: `makespan <= ratio · accepted`.
    pub accepted: Rational,
    /// A certified lower bound on `OPT` established by the search (at least
    /// the problem's `T_min`; stronger when rejections certify).
    pub certificate: Rational,
    /// Dual-test probes performed.
    pub probes: usize,
    /// The proven factor of this run relative to `accepted`.
    pub ratio: Rational,
}

/// A scheduling problem solvable through the unified dual-approximation
/// surface — see the module docs for the contract each method carries.
pub trait Problem {
    /// Short human-readable name (CLI/report labels).
    fn name(&self) -> &'static str;

    /// Instance-only lower bound: `T_min <= OPT`.
    fn t_min(&self) -> Rational;

    /// A guess [`Problem::probe`] is guaranteed to accept *and*
    /// [`Problem::build`] to realize — the searches' fallback anchor.
    /// Default: the Theorem-1 window top `2·T_min`.
    fn t_safe(&self) -> Rational {
        self.t_min() * 2u64
    }

    /// Upper seed of the ε-search bracket (must be accepted). Default:
    /// `2·T_min`, the proven window; heuristic problems override with their
    /// own safe guess.
    fn search_hi(&self) -> Rational {
        self.t_min() * 2u64
    }

    /// Whether a probe rejection certifies `T < OPT`. `true` for the
    /// paper's duals; `false` for heuristic duals, whose rejections must not
    /// tighten the certificate.
    fn probe_certifies(&self) -> bool;

    /// The builder's dual ratio `ρ`: `build(T)` schedules within `ρ·T`.
    fn dual_ratio(&self) -> Rational;

    /// The dual accept test at guess `t`.
    fn probe(&self, ws: &mut DualWorkspace, t: Rational) -> bool;

    /// Builds a schedule at an accepted guess; `None` signals a defensive
    /// rejection (callers retry at [`Problem::t_safe`]).
    fn build(&self, ws: &mut DualWorkspace, t: Rational, trace: &mut Trace)
        -> Option<ScheduleRepr>;

    /// The `O(n)` direct fallback ([`Algorithm::TwoApprox`]): a schedule
    /// plus the proven (possibly a-posteriori) factor of its makespan
    /// relative to `T_min`.
    fn fallback(&self, ws: &mut DualWorkspace, trace: &mut Trace) -> (ScheduleRepr, Rational);

    /// The problem's best direct algorithm ([`Algorithm::ThreeHalves`]):
    /// Class Jumping, the exact integer search, or — for problems without a
    /// specialized search — a fine ε-search over the dual.
    fn direct_search(&self, ws: &mut DualWorkspace, trace: &mut Trace) -> DirectSolve;

    /// [`Problem::direct_search`] under a cooperative [`SolveBudget`]. The
    /// default ignores the budget and always completes — correct, if not
    /// deadline-respecting; interruptible problems override it with their
    /// budgeted searches (bit-identical under an unlimited budget). On
    /// interruption the returned [`DirectSolve`] must still be *valid*:
    /// `repr` realized at an accepted `accepted`, `certificate` restricted
    /// to genuinely certified rejections.
    fn direct_search_budgeted(
        &self,
        ws: &mut DualWorkspace,
        budget: &SolveBudget,
        trace: &mut Trace,
    ) -> (DirectSolve, Option<Interrupt>) {
        let _ = budget;
        (self.direct_search(ws, trace), None)
    }

    /// [`Problem::direct_search_budgeted`] with `threads` worker threads
    /// available for speculative probing (see [`crate::par`]). Must be
    /// bit-identical to the sequential search at every thread count. The
    /// default ignores the threads — correct for searches with no parallel
    /// form (Class Jumping's probe ladder is sequentially dependent);
    /// problems whose direct search is a bisection override it.
    fn direct_search_par_budgeted(
        &self,
        ws: &mut DualWorkspace,
        threads: usize,
        budget: &SolveBudget,
        trace: &mut Trace,
    ) -> (DirectSolve, Option<Interrupt>)
    where
        Self: Sync,
    {
        let _ = threads;
        self.direct_search_budgeted(ws, budget, trace)
    }

    /// [`Problem::exact_oracle`] under a shared [`SolveBudget`]: the
    /// portfolio's exact arm draws its nodes from the *same* budget as the
    /// probe ladders (no double-accounting of wall-clock or work). The
    /// default ignores the budget; problems backing onto `bss-exact`
    /// override it.
    fn exact_oracle_budgeted(&self, budget: &SolveBudget) -> Option<bss_exact::ExactSolve> {
        let _ = budget;
        self.exact_oracle()
    }

    /// The exact branch-and-bound oracle, for problems small enough that it
    /// is worth running ([`Algorithm::Portfolio`] only). `None` — the
    /// default — skips the oracle entirely; a [`bss_exact::ExactStatus::
    /// Closed`] result certifies `OPT` exactly (guarantee 1), and a
    /// non-closed result still donates its certified lower bound and
    /// anytime incumbent.
    fn exact_oracle(&self) -> Option<bss_exact::ExactSolve> {
        None
    }
}

/// Drives any [`Problem`] through the chosen [`Algorithm`] on a reusable
/// workspace. All four modes share the guarantee accounting documented on
/// the module; the result is a standard [`Solution`].
///
/// (`P: Sync` because the same driver backs the parallel entry points,
/// where probes run on worker threads; both implementors in this workspace
/// are plain borrows of immutable instances.)
#[must_use]
pub fn solve_problem<P: Problem + Sync + ?Sized>(
    ws: &mut DualWorkspace,
    problem: &P,
    algo: Algorithm,
    trace: &mut Trace,
) -> Solution {
    solve_problem_with_budget(ws, problem, algo, &SolveBudget::unlimited(), trace)
}

/// [`solve_problem`] with `threads` threads of speculative parallelism on
/// the probe ladders (see [`crate::par`]): bit-identical results and probe
/// accounting at every thread count, `threads <= 1` *is* the sequential
/// driver.
#[must_use]
pub fn solve_problem_par<P: Problem + Sync + ?Sized>(
    ws: &mut DualWorkspace,
    problem: &P,
    algo: Algorithm,
    threads: usize,
    trace: &mut Trace,
) -> Solution {
    solve_problem_par_with_budget(ws, problem, algo, threads, &SolveBudget::unlimited(), trace)
}

/// [`solve_problem`] at the safe API boundary: the solve runs under `budget`
/// and behind [`catch_unwind`], so a solver panic (arithmetic overflow on an
/// adversarial instance, a violated internal invariant, injected chaos)
/// surfaces as a typed [`SolveError`] instead of unwinding through the
/// caller. On panic the workspace is [reset](DualWorkspace::reset) — buffers
/// abandoned mid-probe may hold arbitrary partial state — so the same
/// workspace is safe (and bit-identical to fresh) for the next solve.
/// Ordinary interrupts (deadline, budget, cancel) are *not* errors: they
/// return `Ok` with a degraded [`Completion`] and honest accounting.
pub fn solve_problem_budgeted<P: Problem + Sync + ?Sized>(
    ws: &mut DualWorkspace,
    problem: &P,
    algo: Algorithm,
    budget: &SolveBudget,
    trace: &mut Trace,
) -> Result<Solution, SolveError> {
    solve_problem_par_budgeted(ws, problem, algo, 1, budget, trace)
}

/// [`solve_problem_budgeted`] with `threads` threads of speculative
/// parallelism — the safe boundary of the parallel driver. Panics caught
/// here include those re-raised from speculative workers along the
/// committed path (losers' panics never surface; see [`crate::par`]).
///
/// # Errors
/// [`SolveError`] when the solver panicked; interruption is **not** an
/// error.
pub fn solve_problem_par_budgeted<P: Problem + Sync + ?Sized>(
    ws: &mut DualWorkspace,
    problem: &P,
    algo: Algorithm,
    threads: usize,
    budget: &SolveBudget,
    trace: &mut Trace,
) -> Result<Solution, SolveError> {
    let result = {
        let ws = &mut *ws;
        let trace = &mut *trace;
        catch_unwind(AssertUnwindSafe(move || {
            solve_problem_par_with_budget(ws, problem, algo, threads, budget, trace)
        }))
    };
    match result {
        Ok(sol) => Ok(sol),
        Err(payload) => {
            ws.reset();
            Err(SolveError::from_panic(payload.as_ref()))
        }
    }
}

/// The budgeted driver core: panics propagate (prefer
/// [`solve_problem_budgeted`] at API boundaries). Bit-identical to
/// [`solve_problem`] under [`SolveBudget::unlimited`]; under a limited
/// budget, an interruption degrades gracefully — the search's current right
/// bracket (always a genuinely accepted guess) is built, the `O(n)` fallback
/// is merged in as a safety net, the `ratio_bound` is honestly widened
/// against the certified lower bound, and [`Solution::completion`] reports
/// what happened.
#[must_use]
pub fn solve_problem_with_budget<P: Problem + Sync + ?Sized>(
    ws: &mut DualWorkspace,
    problem: &P,
    algo: Algorithm,
    budget: &SolveBudget,
    trace: &mut Trace,
) -> Solution {
    solve_problem_par_with_budget(ws, problem, algo, 1, budget, trace)
}

/// The parallel driver core — [`solve_problem_with_budget`] is this with
/// `threads = 1`. Panics propagate (prefer [`solve_problem_par_budgeted`]
/// at API boundaries). The search arms dispatch to the speculative drivers
/// of [`crate::par`] when `threads > 1`; results are bit-identical to the
/// sequential driver either way (guarded by the `par_determinism` suite).
#[must_use]
pub fn solve_problem_par_with_budget<P: Problem + Sync + ?Sized>(
    ws: &mut DualWorkspace,
    problem: &P,
    algo: Algorithm,
    threads: usize,
    budget: &SolveBudget,
    trace: &mut Trace,
) -> Solution {
    let t_min = problem.t_min();
    let mut sol = match algo {
        Algorithm::Portfolio => {
            let a = solve_problem_par_with_budget(
                ws,
                problem,
                Algorithm::ThreeHalves,
                threads,
                budget,
                trace,
            );
            let b = solve_problem_par_with_budget(
                ws,
                problem,
                Algorithm::TwoApprox,
                threads,
                budget,
                trace,
            );
            // The primary member's guarantee carries over: even when the
            // fallback's schedule wins on makespan, it is bounded by the
            // primary's makespan, so `a.ratio_bound * a.accepted` still
            // dominates. Keep that pair so the documented invariant
            // `makespan <= ratio_bound * accepted` holds. (When the primary
            // was interrupted, its pair is already the honestly widened
            // one, so no further widening happens here.)
            let completion = a.completion;
            let accepted = a.accepted;
            let ratio = a.ratio_bound;
            let (mut best, other) = if a.makespan <= b.makespan {
                (a, b)
            } else {
                (b, a)
            };
            best.accepted = accepted;
            best.ratio_bound = ratio;
            best.certificate = best.certificate.max(other.certificate);
            best.probes += other.probes;
            // Tiny instances afford the exact oracle: a closed search *is*
            // the optimum (guarantee 1); a non-closed search still donates
            // its certified lower bound, and its anytime incumbent when
            // that schedule beats both members. An interrupted or exhausted
            // budget skips the oracle — the remaining time belongs to the
            // caller, not to branch-and-bound — and the skip (or an oracle
            // cut short mid-search) is reported as degradation: `Full` must
            // keep meaning "bit-identical to the unbudgeted solve".
            let mut oracle_interrupt = None;
            let oracle = if completion.is_full() {
                match budget.poll() {
                    Ok(()) => {
                        let ex = problem.exact_oracle_budgeted(budget);
                        if let Err(i) = budget.poll() {
                            oracle_interrupt = Some(i);
                        }
                        ex
                    }
                    Err(i) => {
                        oracle_interrupt = Some(i);
                        None
                    }
                }
            } else {
                None
            };
            let closed = matches!(&oracle, Some(ex) if ex.status == bss_exact::ExactStatus::Closed);
            let mut merged = match oracle {
                Some(ex) if ex.status == bss_exact::ExactStatus::Closed => {
                    let opt = ex.upper;
                    finish(
                        ScheduleRepr::Explicit(ex.schedule),
                        opt,
                        Rational::ONE,
                        opt,
                        best.probes,
                    )
                }
                Some(ex) => {
                    best.certificate = best.certificate.max(ex.lower);
                    let incumbent = ex.schedule.makespan();
                    if incumbent < best.makespan {
                        let mut sol = finish(
                            ScheduleRepr::Explicit(ex.schedule),
                            best.accepted,
                            best.ratio_bound,
                            best.certificate,
                            best.probes,
                        );
                        debug_assert_eq!(sol.makespan, incumbent);
                        sol.certificate = sol.certificate.min(sol.makespan);
                        sol
                    } else {
                        best
                    }
                }
                None => best,
            };
            // A closed oracle *is* the full answer even if the budget tripped
            // between closing and reporting; otherwise a skipped or cut-short
            // oracle degrades the portfolio honestly.
            merged.completion = if closed {
                Completion::Full
            } else if let Some(i) = oracle_interrupt {
                Completion::of(Some(i))
            } else {
                completion
            };
            merged
        }
        Algorithm::TwoApprox => {
            // The `O(n)` fallback is the floor everything else degrades to;
            // it runs to completion regardless of the budget.
            let (repr, ratio) = problem.fallback(ws, trace);
            finish(repr, t_min, ratio, t_min, 0)
        }
        Algorithm::EpsilonSearch { eps_log2 } => {
            let eps = Rational::new(1, 1 << eps_log2.min(60));
            let budgeted = if threads > 1 {
                crate::par::epsilon_search_between_par_budgeted(
                    t_min,
                    problem.search_hi(),
                    eps * t_min,
                    threads,
                    budget,
                    ws,
                    |w, t| problem.probe(w, t),
                )
            } else {
                epsilon_search_between_budgeted(
                    t_min,
                    problem.search_hi(),
                    eps * t_min,
                    budget,
                    |t| problem.probe(ws, t),
                )
            };
            let out = budgeted.outcome;
            // The builders keep defensive rejection branches beyond the
            // accept test; if one fires at the accepted guess, fall back to
            // the problem's safe guess instead of panicking.
            let (accepted, repr) = match problem.build(ws, out.accepted, trace) {
                Some(r) => (out.accepted, r),
                None => {
                    let hi = problem.t_safe();
                    (
                        hi,
                        problem
                            .build(ws, hi, trace)
                            .expect("t_safe is accepted and builds"),
                    )
                }
            };
            let cert = if problem.probe_certifies() {
                out.rejected.unwrap_or(t_min).max(t_min)
            } else {
                t_min
            };
            let sol = finish(
                repr,
                accepted,
                problem.dual_ratio() * (eps + 1u64),
                cert,
                out.probes,
            );
            degraded(ws, problem, sol, budgeted.interrupt, trace)
        }
        Algorithm::ThreeHalves => {
            let (d, interrupt) = if threads > 1 {
                problem.direct_search_par_budgeted(ws, threads, budget, trace)
            } else {
                problem.direct_search_budgeted(ws, budget, trace)
            };
            let sol = finish(
                d.repr,
                d.accepted,
                d.ratio,
                d.certificate.max(t_min),
                d.probes,
            );
            degraded(ws, problem, sol, interrupt, trace)
        }
    };
    // Heuristic problems may floor their `t_min` above the true optimum of
    // degenerate (all-zero-cost) instances; clamp so `certificate <=
    // makespan` stays an invariant of every Solution. A no-op whenever the
    // certificate is a genuine lower bound on OPT.
    if !problem.probe_certifies() {
        sol.certificate = sol.certificate.min(sol.makespan);
    }
    sol
}

/// Applies graceful degradation to an interrupted search result (no-op when
/// `interrupt` is `None`):
///
/// 1. **Honest widening.** A completed certifying search proves `makespan <=
///    ratio · OPT` because it drove `accepted` down to (within ε of) a
///    certified rejection. An interrupted one only knows `makespan <= ratio ·
///    accepted` and `OPT > certificate`, so the tightest honest claim versus
///    `OPT` is `ratio · accepted / certificate` — wider, and exactly as wide
///    as the unfinished bracket. Heuristic problems
///    (`!probe_certifies`) skip this: their `ratio_bound` is constructive
///    versus `accepted`, never a claim versus `OPT`.
/// 2. **Safety net.** The `O(n)` fallback is built and merged
///    portfolio-style — each arm keeps its own coherent `(accepted,
///    ratio_bound)` pair, the better makespan wins, certificates merge by
///    maximum — so even an instantly-expiring budget returns the
///    Theorem-1 2-approximation rather than the bracket top alone.
/// 3. The [`Completion`] records the interrupt.
fn degraded<P: Problem + ?Sized>(
    ws: &mut DualWorkspace,
    problem: &P,
    mut sol: Solution,
    interrupt: Option<Interrupt>,
    trace: &mut Trace,
) -> Solution {
    let Some(interrupt) = interrupt else {
        return sol;
    };
    if problem.probe_certifies() && sol.certificate.is_positive() && sol.accepted > sol.certificate
    {
        sol.ratio_bound = sol.ratio_bound * sol.accepted / sol.certificate;
    }
    let t_min = problem.t_min();
    let (repr, ratio) = problem.fallback(ws, trace);
    let net = finish(repr, t_min, ratio, t_min, 0);
    let cert = sol.certificate.max(net.certificate);
    if net.makespan < sol.makespan {
        let probes = sol.probes;
        sol = net;
        sol.probes = probes;
    }
    sol.certificate = cert;
    sol.completion = Completion::of(Some(interrupt));
    sol
}

/// The batch-setup problem of the paper, for one of its three variants.
///
/// This is the [`Problem`] the historical `solve` family is implemented on:
/// probes and builders are the theorems' duals (rejections certify), the
/// direct search is Class Jumping (splittable, preemptive; Theorems 3 and 6)
/// or the exact integer search (non-preemptive; Theorem 8), and the fallback
/// is the `O(n)` 2-approximation of Theorem 1.
#[derive(Debug)]
pub struct BssProblem<'a> {
    inst: &'a Instance,
    variant: Variant,
    bounds: LowerBounds,
}

impl<'a> BssProblem<'a> {
    /// The chosen variant's problem over `inst`.
    #[must_use]
    pub fn new(inst: &'a Instance, variant: Variant) -> Self {
        BssProblem {
            inst,
            variant,
            bounds: LowerBounds::of(inst),
        }
    }

    /// The integral guess the non-preemptive dual takes (probing at `⌊t⌋`
    /// only strengthens the test, `⌊t⌋ <= t`).
    fn int_guess(t: Rational) -> u64 {
        t.floor().max(1) as u64
    }
}

impl Problem for BssProblem<'_> {
    fn name(&self) -> &'static str {
        match self.variant {
            Variant::Splittable => "splittable",
            Variant::Preemptive => "preemptive",
            Variant::NonPreemptive => "non-preemptive",
        }
    }

    fn t_min(&self) -> Rational {
        self.bounds.tmin(self.variant)
    }

    fn t_safe(&self) -> Rational {
        match self.variant {
            // The integral window top, so the fallback build probes the same
            // guess it reports.
            Variant::NonPreemptive => Rational::from(2 * self.t_min().ceil().max(1) as u64),
            _ => self.t_min() * 2u64,
        }
    }

    fn probe_certifies(&self) -> bool {
        true
    }

    fn dual_ratio(&self) -> Rational {
        Rational::new(3, 2)
    }

    fn probe(&self, ws: &mut DualWorkspace, t: Rational) -> bool {
        match self.variant {
            Variant::Splittable => splittable::accepts_in(ws, self.inst, t),
            Variant::Preemptive => {
                preemptive::accepts_in(ws, self.inst, t, preemptive::CountMode::AlphaPrime)
            }
            Variant::NonPreemptive => nonpreemptive::accepts(self.inst, Self::int_guess(t)),
        }
    }

    fn build(
        &self,
        ws: &mut DualWorkspace,
        t: Rational,
        trace: &mut Trace,
    ) -> Option<ScheduleRepr> {
        match self.variant {
            Variant::Splittable => {
                splittable::dual_traced_in(ws, self.inst, t, trace).map(ScheduleRepr::Compact)
            }
            Variant::Preemptive => {
                preemptive::dual_in(ws, self.inst, t, preemptive::CountMode::AlphaPrime, trace)
                    .map(ScheduleRepr::Explicit)
            }
            Variant::NonPreemptive => {
                nonpreemptive::dual_in(ws, self.inst, Self::int_guess(t), trace)
                    .map(ScheduleRepr::Explicit)
            }
        }
    }

    fn fallback(&self, ws: &mut DualWorkspace, trace: &mut Trace) -> (ScheduleRepr, Rational) {
        let repr = match self.variant {
            Variant::Splittable => {
                ScheduleRepr::Compact(two_approx::splittable_two_approx_in(ws, self.inst))
            }
            _ => ScheduleRepr::Explicit(two_approx::greedy_two_approx(self.inst, trace)),
        };
        (repr, Rational::from(2u64))
    }

    fn direct_search(&self, ws: &mut DualWorkspace, trace: &mut Trace) -> DirectSolve {
        self.direct_search_budgeted(ws, &SolveBudget::unlimited(), trace)
            .0
    }

    fn direct_search_budgeted(
        &self,
        ws: &mut DualWorkspace,
        budget: &SolveBudget,
        _trace: &mut Trace,
    ) -> (DirectSolve, Option<Interrupt>) {
        let t_min = self.t_min();
        let three_halves = Rational::new(3, 2);
        match self.variant {
            Variant::Splittable => {
                let (out, interrupt) = splittable::class_jumping_budgeted_in(ws, self.inst, budget);
                (
                    DirectSolve {
                        repr: ScheduleRepr::Compact(out.schedule),
                        accepted: out.accepted,
                        certificate: out.rejected.unwrap_or(t_min).max(t_min),
                        probes: out.probes,
                        ratio: three_halves,
                    },
                    interrupt,
                )
            }
            Variant::Preemptive => {
                let (out, interrupt) = preemptive::class_jumping_budgeted_in(ws, self.inst, budget);
                (
                    DirectSolve {
                        repr: ScheduleRepr::Explicit(out.schedule),
                        accepted: out.accepted,
                        certificate: out.rejected.unwrap_or(t_min).max(t_min),
                        probes: out.probes,
                        ratio: three_halves,
                    },
                    interrupt,
                )
            }
            Variant::NonPreemptive => {
                let (out, interrupt) =
                    nonpreemptive::three_halves_budgeted_in(ws, self.inst, budget);
                (
                    DirectSolve {
                        repr: ScheduleRepr::Explicit(out.schedule),
                        accepted: out.accepted,
                        certificate: out.rejected.unwrap_or(t_min).max(t_min),
                        probes: out.probes,
                        ratio: three_halves,
                    },
                    interrupt,
                )
            }
        }
    }

    fn direct_search_par_budgeted(
        &self,
        ws: &mut DualWorkspace,
        threads: usize,
        budget: &SolveBudget,
        trace: &mut Trace,
    ) -> (DirectSolve, Option<Interrupt>) {
        match self.variant {
            // Theorem 8's integer bisection parallelizes speculatively.
            Variant::NonPreemptive if threads > 1 => {
                let t_min = self.t_min();
                let (out, interrupt) =
                    nonpreemptive::three_halves_par_budgeted_in(ws, self.inst, threads, budget);
                (
                    DirectSolve {
                        repr: ScheduleRepr::Explicit(out.schedule),
                        accepted: out.accepted,
                        certificate: out.rejected.unwrap_or(t_min).max(t_min),
                        probes: out.probes,
                        ratio: Rational::new(3, 2),
                    },
                    interrupt,
                )
            }
            // Class Jumping (splittable, preemptive) walks a jump structure
            // whose next probe depends on the previous outcome in a way the
            // wavefront planner cannot enumerate; it stays sequential.
            _ => self.direct_search_budgeted(ws, budget, trace),
        }
    }

    fn exact_oracle(&self) -> Option<bss_exact::ExactSolve> {
        self.exact_oracle_budgeted(&SolveBudget::unlimited())
    }

    fn exact_oracle_budgeted(&self, budget: &SolveBudget) -> Option<bss_exact::ExactSolve> {
        // Gate well inside the oracle's comfort zone so the portfolio's
        // asymptotics are untouched on real workloads.
        if self.inst.num_jobs() > 12 || self.inst.machines() > 4 || self.inst.num_classes() > 6 {
            return None;
        }
        bss_exact::solve_bss_budgeted(
            self.inst,
            self.variant,
            &bss_exact::ExactConfig::default(),
            budget,
        )
        .ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, solve_problem};
    use bss_schedule::validate;

    /// The trait-driven path must be bit-identical to the historical `solve`
    /// facade (which now delegates to it — this guards the delegation).
    #[test]
    fn bss_problem_matches_solve_facade() {
        for seed in 0..8 {
            let inst = bss_gen::uniform(60, 8, 4, seed);
            for variant in Variant::ALL {
                let problem = BssProblem::new(&inst, variant);
                for algo in [
                    Algorithm::TwoApprox,
                    Algorithm::EpsilonSearch { eps_log2: 6 },
                    Algorithm::ThreeHalves,
                    Algorithm::Portfolio,
                ] {
                    let mut ws = DualWorkspace::new();
                    let a = solve_problem(&mut ws, &problem, algo, &mut Trace::disabled());
                    let b = solve(&inst, variant, algo);
                    assert_eq!(a.makespan, b.makespan, "{variant} {algo:?}");
                    assert_eq!(a.accepted, b.accepted, "{variant} {algo:?}");
                    assert_eq!(a.ratio_bound, b.ratio_bound, "{variant} {algo:?}");
                    assert_eq!(a.certificate, b.certificate, "{variant} {algo:?}");
                    assert_eq!(a.probes, b.probes, "{variant} {algo:?}");
                    assert_eq!(a.schedule().placements(), b.schedule().placements());
                    assert!(validate(a.schedule(), &inst, variant).is_empty());
                }
            }
        }
    }

    #[test]
    fn problem_metadata_is_consistent() {
        let inst = bss_gen::uniform(30, 5, 3, 1);
        for variant in Variant::ALL {
            let p = BssProblem::new(&inst, variant);
            assert!(p.probe_certifies());
            assert!(p.t_min() <= p.t_safe());
            assert!(p.t_min() <= p.search_hi());
            assert_eq!(p.dual_ratio(), Rational::new(3, 2));
            // The safe guess really is accepted and buildable.
            let mut ws = DualWorkspace::new();
            assert!(p.probe(&mut ws, p.t_safe()));
            assert!(p
                .build(&mut ws, p.t_safe(), &mut Trace::disabled())
                .is_some());
        }
    }
}
