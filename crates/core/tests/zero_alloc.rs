//! Counting-allocator proof that the dual-probe hot path — and, since the
//! compact-first pipeline, the dual *build* path — is allocation-free once a
//! [`DualWorkspace`] is warmed up.
//!
//! The whole check lives in a single `#[test]`, and the counter is
//! *thread-local*: only allocations made by the measuring thread count.
//! A process-wide counter would race against libtest's main thread, which
//! lazily allocates its mpsc parking context the first time it blocks
//! waiting for a test result — at a nondeterministic point that can land
//! inside the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use bss_core::{nonpreemptive, preemptive, splittable, Algorithm, DualWorkspace, Trace};
use bss_instance::{Instance, LowerBounds, Variant};
use bss_rational::Rational;
use bss_schedule::{CompactSchedule, Schedule};

struct CountingAllocator;

thread_local! {
    // `const` initialisation gives the slot a plain TLS block entry: reading
    // or writing it never allocates, so the hooks below cannot recurse into
    // themselves. `Cell<u64>` has no destructor, so no TLS dtor is
    // registered either.
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // `try_with` instead of `with`: allocations during thread teardown (after
    // TLS destruction) must pass through uncounted, not panic the allocator.
    let _ = ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Allocations made by *this thread* since it started.
fn allocations() -> u64 {
    ALLOCATIONS.with(|count| count.get())
}

/// Probe guesses spanning accepted and rejected outcomes (and, in the
/// preemptive case, both knapsack branches) for one instance.
fn guesses(inst: &Instance, variant: Variant) -> Vec<Rational> {
    let t_min = LowerBounds::of(inst).tmin(variant);
    (10..=40)
        .step_by(3)
        .map(|k| t_min * Rational::new(k, 20))
        .collect()
}

#[test]
fn dual_probes_allocate_nothing_after_warmup() {
    let inst = bss_gen::uniform(2_000, 120, 16, 3);
    let mut ws = DualWorkspace::new();

    let split_ts = guesses(&inst, Variant::Splittable);
    let pmtn_ts = guesses(&inst, Variant::Preemptive);
    let nonp_t = LowerBounds::of(&inst).tmin(Variant::NonPreemptive).ceil() as u64;

    // Warm-up: one pass over every probe shape grows the workspace to its
    // steady-state capacities.
    for &t in &split_ts {
        let _ = splittable::accepts_in(&mut ws, &inst, t);
    }
    for &t in &pmtn_ts {
        let _ = preemptive::accepts_in(&mut ws, &inst, t, preemptive::CountMode::AlphaPrime);
        let _ = preemptive::accepts_in(&mut ws, &inst, t, preemptive::CountMode::Gamma);
    }

    // Measured phase: identical probes, many rounds — the acceptance
    // criterion is zero heap allocations.
    let before = allocations();
    let mut accepted = 0usize;
    for _ in 0..5 {
        for &t in &split_ts {
            accepted += usize::from(splittable::accepts_in(&mut ws, &inst, t));
        }
        for &t in &pmtn_ts {
            accepted += usize::from(preemptive::accepts_in(
                &mut ws,
                &inst,
                t,
                preemptive::CountMode::AlphaPrime,
            ));
            accepted += usize::from(preemptive::accepts_in(
                &mut ws,
                &inst,
                t,
                preemptive::CountMode::Gamma,
            ));
        }
        // The non-preemptive test is integer-only and has always been
        // allocation-free; keep it under the same counter to prove it.
        for dt in 0..8 {
            accepted += usize::from(nonpreemptive::accepts(&inst, nonp_t + dt * nonp_t / 4));
        }
    }
    let after = allocations();

    assert!(accepted > 0, "sweep must accept at least one guess");
    assert_eq!(
        after - before,
        0,
        "dual-probe hot path allocated {} times after warm-up",
        after - before
    );

    warm_builds_allocate_only_output(&inst, &mut ws);
    warm_solves_allocate_only_output(&inst, &mut ws);
    warm_seqdep_solves_allocate_only_output(&mut ws);
}

/// The *build* path: with the workspace warm and the output buffers
/// recycled, `dual_into` performs **zero** heap allocations for the
/// explicit-schedule variants, and only per-group output storage for the
/// compact splittable builder.
fn warm_builds_allocate_only_output(inst: &Instance, ws: &mut DualWorkspace) {
    let split_t = LowerBounds::of(inst).tmin(Variant::Splittable) * 2u64;
    let pmtn_t = LowerBounds::of(inst).tmin(Variant::Preemptive) * 2u64;
    let nonp_t = 2 * LowerBounds::of(inst).tmin(Variant::NonPreemptive).ceil() as u64;
    let mut trace = Trace::disabled();

    // Warm-up: grow the workspace and the reused outputs to steady state.
    let mut schedule_out = Schedule::new(inst.machines());
    let mut compact_out = CompactSchedule::new(inst.machines());
    assert!(preemptive::dual_into(
        ws,
        inst,
        pmtn_t,
        preemptive::CountMode::AlphaPrime,
        &mut trace,
        &mut schedule_out,
    ));
    let mut nonp_out = Schedule::new(inst.machines());
    assert!(nonpreemptive::dual_into(
        ws,
        inst,
        nonp_t,
        &mut trace,
        &mut nonp_out
    ));
    assert!(splittable::dual_into(
        ws,
        inst,
        split_t,
        &mut trace,
        &mut compact_out
    ));

    // Preemptive warm build: zero allocations.
    let before = allocations();
    assert!(preemptive::dual_into(
        ws,
        inst,
        pmtn_t,
        preemptive::CountMode::AlphaPrime,
        &mut trace,
        &mut schedule_out,
    ));
    let delta = allocations() - before;
    assert_eq!(delta, 0, "warm preemptive build allocated {delta} times");

    // Non-preemptive warm build: zero allocations (partitions, stacks,
    // queues and repair maps all live in the workspace).
    let before = allocations();
    assert!(nonpreemptive::dual_into(
        ws,
        inst,
        nonp_t,
        &mut trace,
        &mut nonp_out
    ));
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "warm non-preemptive build allocated {delta} times"
    );

    // Splittable warm build: the compact output's per-group item vectors are
    // the only allocations (genuine output storage; the group list itself is
    // recycled).
    let before = allocations();
    assert!(splittable::dual_into(
        ws,
        inst,
        split_t,
        &mut trace,
        &mut compact_out
    ));
    let delta = allocations() - before;
    // Groups are built in place inside the output: each group costs its item
    // vector's doubling growth (≤ stored items) plus at most one push — all
    // of it output storage.
    let output_bound = compact_out.groups().len() as u64 + compact_out.stored_items() as u64;
    assert!(
        delta <= output_bound,
        "warm splittable build allocated {delta} times (output bound {output_bound})"
    );
}

/// The sequence-dependent surface obeys the same discipline: with the
/// problem constructed once (so the uniform-reduction detection is not
/// re-paid) and the workspace's seqdep scratch warm, a full solve — probes,
/// build, `Solution` assembly — allocates only the output schedule's own
/// storage plus the same small scaffolding budget as the batch-setup paths.
fn warm_seqdep_solves_allocate_only_output(ws: &mut DualWorkspace) {
    use bss_core::{solve_problem, SeqDepProblem};

    // General (heuristic-dual) regime: probes and builder run entirely in
    // workspace scratch.
    let general = bss_gen::seqdep::triangle_violating(400, 8, 1);
    let problem = SeqDepProblem::new(&general);
    assert!(problem.uniform_reduction().is_none());
    let _ = solve_problem(ws, &problem, Algorithm::ThreeHalves, &mut Trace::disabled());

    let before = allocations();
    let sol = solve_problem(ws, &problem, Algorithm::ThreeHalves, &mut Trace::disabled());
    let delta = allocations() - before;
    // Output storage: the explicit schedule's placement vector grows by
    // doubling (≤ log2(P) + 1 reallocations) from its fresh `Schedule::new`;
    // the 64-allocation slack covers the Solution scaffolding without
    // leaving room for any O(c²) or O(c) per-solve buffer (c = 400 here).
    assert!(sol.schedule().placements().len() > 400);
    assert!(
        delta <= 64,
        "warm seqdep (general) solve allocated {delta} times"
    );

    // Uniform regime: the solve routes through the batch-setup reduction
    // held inside the problem, running Theorem 8's search on the warm
    // workspace.
    let uniform = bss_gen::seqdep::uniform_setups(400, 8, 2);
    let problem = SeqDepProblem::new(&uniform);
    assert!(problem.uniform_reduction().is_some());
    let _ = solve_problem(ws, &problem, Algorithm::ThreeHalves, &mut Trace::disabled());

    let before = allocations();
    let sol = solve_problem(ws, &problem, Algorithm::ThreeHalves, &mut Trace::disabled());
    let delta = allocations() - before;
    assert!(sol.schedule().placements().len() >= 400);
    assert!(
        delta <= 64,
        "warm seqdep (uniform/reduction) solve allocated {delta} times"
    );
}

/// The full `solve_with` path (search + build): warm allocations are bounded
/// by the output schedule's own storage plus a small constant — no
/// per-probe or per-build `O(n)` buffers survive anywhere in the pipeline.
fn warm_solves_allocate_only_output(inst: &Instance, ws: &mut DualWorkspace) {
    for variant in Variant::ALL {
        // Warm-up solve grows the search scratch to steady state.
        let _ = bss_core::solve_with(ws, inst, variant, Algorithm::ThreeHalves);

        let before = allocations();
        let sol = bss_core::solve_with(ws, inst, variant, Algorithm::ThreeHalves);
        let delta = allocations() - before;
        // Output storage: a compact schedule allocates one item vector per
        // group plus the group list; an explicit schedule grows its
        // placement vector by doubling (≤ log2(P) + 1 reallocations). The
        // slack of 64 covers the SearchOutcome/Solution scaffolding without
        // leaving room for any O(n) per-solve buffer (n = 2000 here).
        let output_bound = 64
            + sol
                .compact()
                .map_or(0, |c| (c.groups().len() + c.stored_items()) as u64);
        assert!(
            delta <= output_bound,
            "warm {variant} solve allocated {delta} times (bound {output_bound})"
        );
    }
}
