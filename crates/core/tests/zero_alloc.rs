//! Counting-allocator proof that the dual-probe hot path is allocation-free
//! once a [`DualWorkspace`] is warmed up.
//!
//! The whole check lives in a single `#[test]` so no concurrent test in this
//! binary can pollute the global allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bss_core::{nonpreemptive, preemptive, splittable, DualWorkspace};
use bss_instance::{Instance, LowerBounds, Variant};
use bss_rational::Rational;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Probe guesses spanning accepted and rejected outcomes (and, in the
/// preemptive case, both knapsack branches) for one instance.
fn guesses(inst: &Instance, variant: Variant) -> Vec<Rational> {
    let t_min = LowerBounds::of(inst).tmin(variant);
    (10..=40)
        .step_by(3)
        .map(|k| t_min * Rational::new(k, 20))
        .collect()
}

#[test]
fn dual_probes_allocate_nothing_after_warmup() {
    let inst = bss_gen::uniform(2_000, 120, 16, 3);
    let mut ws = DualWorkspace::new();

    let split_ts = guesses(&inst, Variant::Splittable);
    let pmtn_ts = guesses(&inst, Variant::Preemptive);
    let nonp_t = LowerBounds::of(&inst).tmin(Variant::NonPreemptive).ceil() as u64;

    // Warm-up: one pass over every probe shape grows the workspace to its
    // steady-state capacities.
    for &t in &split_ts {
        let _ = splittable::accepts_in(&mut ws, &inst, t);
    }
    for &t in &pmtn_ts {
        let _ = preemptive::accepts_in(&mut ws, &inst, t, preemptive::CountMode::AlphaPrime);
        let _ = preemptive::accepts_in(&mut ws, &inst, t, preemptive::CountMode::Gamma);
    }

    // Measured phase: identical probes, many rounds — the acceptance
    // criterion is zero heap allocations.
    let before = allocations();
    let mut accepted = 0usize;
    for _ in 0..5 {
        for &t in &split_ts {
            accepted += usize::from(splittable::accepts_in(&mut ws, &inst, t));
        }
        for &t in &pmtn_ts {
            accepted += usize::from(preemptive::accepts_in(
                &mut ws,
                &inst,
                t,
                preemptive::CountMode::AlphaPrime,
            ));
            accepted += usize::from(preemptive::accepts_in(
                &mut ws,
                &inst,
                t,
                preemptive::CountMode::Gamma,
            ));
        }
        // The non-preemptive test is integer-only and has always been
        // allocation-free; keep it under the same counter to prove it.
        for dt in 0..8 {
            accepted += usize::from(nonpreemptive::accepts(&inst, nonp_t + dt * nonp_t / 4));
        }
    }
    let after = allocations();

    assert!(accepted > 0, "sweep must accept at least one guess");
    assert_eq!(
        after - before,
        0,
        "dual-probe hot path allocated {} times after warm-up",
        after - before
    );
}
