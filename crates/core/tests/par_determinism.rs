//! Property suite pinning the speculative parallel search to its
//! sequential twin, bit for bit.
//!
//! The contract of `crate::par` is *determinism*: at every thread count the
//! parallel search commits exactly the probe sequence the sequential search
//! would run — same accepted bracket, same rejection certificate, same
//! probe count, same solution bytes, and (because only the committed path
//! charges the budget, in sequential order) the same interruption point for
//! every work limit. These properties sweep random instances, algorithms,
//! thread counts and budget cut points to hold that line.
//!
//! Case count scales with `BSS_PROPTEST_CASES` (the nightly CI raises it);
//! `BSS_PAR_THREADS=N` restricts the thread sweep to `{N}` so CI can pin
//! specific counts per job.

use bss_budget::SolveBudget;
use bss_core::search::{epsilon_search_between_budgeted, integer_search_budgeted};
use bss_core::{
    epsilon_search_between_par_budgeted, integer_search_par_budgeted, solve_budgeted_with,
    solve_par_budgeted_with, solve_with, Algorithm, BssProblem, DualWorkspace, Problem, Solution,
};
use bss_instance::{LowerBounds, Variant};
use proptest::prelude::*;

/// The thread counts every property sweeps (each compared against the
/// sequential search). `BSS_PAR_THREADS=N` pins the sweep to `{N}`.
fn thread_counts() -> Vec<usize> {
    match std::env::var("BSS_PAR_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 0 => vec![n],
        _ => vec![1, 2, 4, 8],
    }
}

fn algorithm(idx: u8, eps_log2: u32) -> Algorithm {
    match idx % 3 {
        0 => Algorithm::EpsilonSearch { eps_log2 },
        1 => Algorithm::ThreeHalves,
        _ => Algorithm::Portfolio,
    }
}

fn assert_solutions_identical(label: &str, a: &Solution, b: &Solution) {
    assert_eq!(a.makespan, b.makespan, "{label}: makespan");
    assert_eq!(a.accepted, b.accepted, "{label}: accepted");
    assert_eq!(a.ratio_bound, b.ratio_bound, "{label}: ratio_bound");
    assert_eq!(a.certificate, b.certificate, "{label}: certificate");
    assert_eq!(a.probes, b.probes, "{label}: probes");
    assert_eq!(a.completion, b.completion, "{label}: completion");
    assert_eq!(
        a.schedule().placements(),
        b.schedule().placements(),
        "{label}: placements"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Full-solve bit-identity: `solve_par` ≡ `solve` for every variant,
    /// search-bearing algorithm and thread count.
    #[test]
    fn solve_par_is_bit_identical_to_solve(
        n in 20usize..70,
        c in 2usize..8,
        m in 2usize..6,
        seed in 0u64..10_000,
        eps_log2 in 2u32..8,
        variant_idx in 0usize..3,
    ) {
        let inst = bss_gen::uniform(n, c, m, seed);
        let variant = Variant::ALL[variant_idx];
        // Derived from the seed to stay within the macro's parameter arity.
        let algo = algorithm((seed % 3) as u8, eps_log2);
        let mut ws = DualWorkspace::new();
        let want = solve_with(&mut ws, &inst, variant, algo);
        for threads in thread_counts() {
            let got = solve_par_budgeted_with(
                &mut ws,
                &inst,
                variant,
                algo,
                threads,
                &SolveBudget::unlimited(),
            )
            .expect("unbudgeted solves do not panic");
            assert_solutions_identical(
                &format!("{variant} {algo:?} t={threads} seed={seed}"),
                &got,
                &want,
            );
        }
    }

    /// Work-limit interruption points are deterministic: for *every* cut
    /// point `w` up to the solve's full probe count, the parallel solve
    /// degrades at exactly the same place as the sequential one — same
    /// completion tag, same (partial) certificate, same work accounting.
    #[test]
    fn work_limit_interruption_points_match(
        n in 20usize..60,
        c in 2usize..7,
        m in 2usize..5,
        seed in 0u64..10_000,
        eps_log2 in 3u32..8,
        variant_idx in 0usize..3,
    ) {
        let inst = bss_gen::uniform(n, c, m, seed);
        let variant = Variant::ALL[variant_idx];
        let algo = Algorithm::EpsilonSearch { eps_log2 };
        let mut ws = DualWorkspace::new();
        let full = solve_with(&mut ws, &inst, variant, algo);
        for w in 0..=(full.probes as u64 + 1) {
            let seq_budget = SolveBudget::unlimited().with_work_limit(w);
            let want = solve_budgeted_with(&mut ws, &inst, variant, algo, &seq_budget)
                .expect("budget expiry degrades, never errors");
            for threads in thread_counts() {
                let par_budget = SolveBudget::unlimited().with_work_limit(w);
                let got = solve_par_budgeted_with(
                    &mut ws, &inst, variant, algo, threads, &par_budget,
                )
                .expect("budget expiry degrades, never errors");
                assert_solutions_identical(
                    &format!("{variant} w={w} t={threads} seed={seed}"),
                    &got,
                    &want,
                );
                prop_assert_eq!(
                    par_budget.work_used(),
                    seq_budget.work_used(),
                    "work accounting diverged at w={} t={}",
                    w,
                    threads
                );
            }
        }
    }

    /// Raw ε-search equivalence on real dual probes: accepted bracket,
    /// rejection certificate and probe count all match, per thread count.
    #[test]
    fn epsilon_search_par_matches_on_real_duals(
        n in 20usize..60,
        c in 2usize..7,
        m in 2usize..5,
        seed in 0u64..10_000,
        eps_log2 in 2u32..9,
        variant_idx in 0usize..3,
    ) {
        let inst = bss_gen::uniform(n, c, m, seed);
        let variant = Variant::ALL[variant_idx];
        let problem = BssProblem::new(&inst, variant);
        let t_min = problem.t_min();
        prop_assume!(t_min.is_positive());
        let t_hi = problem.search_hi();
        let gap = t_min / (1u64 << eps_log2);
        let mut ws = DualWorkspace::new();
        let want = {
            let (ws, problem) = (&mut ws, &problem);
            epsilon_search_between_budgeted(
                t_min,
                t_hi,
                gap,
                &SolveBudget::unlimited(),
                |t| problem.probe(ws, t),
            )
        };
        for threads in thread_counts() {
            let got = epsilon_search_between_par_budgeted(
                t_min,
                t_hi,
                gap,
                threads,
                &SolveBudget::unlimited(),
                &mut ws,
                |w, t| problem.probe(w, t),
            );
            prop_assert_eq!(got, want, "t={} seed={}", threads, seed);
        }
    }

    /// Raw integer-search equivalence on the non-preemptive 3/2-dual.
    #[test]
    fn integer_search_par_matches_on_real_duals(
        n in 20usize..60,
        c in 2usize..7,
        m in 2usize..5,
        seed in 0u64..10_000,
    ) {
        let inst = bss_gen::uniform(n, c, m, seed);
        prop_assume!(inst.machines() < inst.num_jobs());
        let t_min = LowerBounds::of(&inst)
            .tmin(Variant::NonPreemptive)
            .ceil() as u64;
        let accepts = |t: u64| bss_core::nonpreemptive::accepts(&inst, t);
        let want = integer_search_budgeted(t_min, 2 * t_min, &SolveBudget::unlimited(), accepts);
        let mut ws = DualWorkspace::new();
        for threads in thread_counts() {
            let got = integer_search_par_budgeted(
                t_min,
                2 * t_min,
                threads,
                &SolveBudget::unlimited(),
                &mut ws,
                |_, t| bss_core::nonpreemptive::accepts(&inst, t),
            );
            prop_assert_eq!(got, want, "t={} seed={}", threads, seed);
        }
    }
}
