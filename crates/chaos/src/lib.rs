//! Deterministic fault-injection harness for the anytime solve surface.
//!
//! The workspace-wide robustness invariant this crate exists to prove:
//!
//! > **Any interruption of any solve yields either a valid, validate-clean,
//! > certified solution or a typed error — never an escaped panic, never an
//! > invalid schedule, never a lying `ratio_bound` or `certificate`.**
//!
//! Faults are injected through the `chaos` feature of `bss-budget`: a
//! [`FaultPlan`](bss_budget::FaultPlan) fires at the `k`-th budget
//! checkpoint — panicking, latching cancellation, or latching deadline
//! expiry — with no wall clock involved, so every run is reproducible from
//! `(instance seed, algorithm, k)` alone. The suite in `tests/chaos_suite.rs`
//! sweeps `k` over every checkpoint index (exhaustively under
//! `BSS_CHAOS_EXHAUSTIVE=1`, a deterministic subset per default), plus
//! work-budget starvation at every level, and cross-checks certificates
//! against the `bss-exact` oracle on gate-sized instances.
//!
//! This crate holds the reusable pieces: gate-sized instance families, the
//! checkpoint dry-run, the OPT oracles, and the [`assert_anytime_bss`] /
//! [`assert_anytime_seqdep`] invariant checkers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bss_budget::SolveBudget;
use bss_core::{Completion, DualWorkspace, Solution};
use bss_instance::{Instance, Variant};
use bss_rational::Rational;
use bss_seqdep::SeqDepInstance;

pub use bss_core::Algorithm;

/// The algorithms the chaos suite drives (every search-bearing mode; the
/// budget cannot interrupt the pure `TwoApprox` fallback, which is exactly
/// why it is the degradation floor).
pub const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::EpsilonSearch { eps_log2: 6 },
    Algorithm::ThreeHalves,
    Algorithm::Portfolio,
];

/// Batch-setup instances inside the exact-oracle gate (≤ 12 jobs, ≤ 4
/// machines, ≤ 6 classes), so every certificate can be cross-checked
/// against a closed OPT. Deterministic in `seed`.
#[must_use]
pub fn gate_instances(seed: u64) -> Vec<(String, Instance)> {
    vec![
        (format!("tiny/{seed}"), bss_gen::tiny(seed)),
        (
            format!("uniform-10x3x3/{seed}"),
            bss_gen::uniform(10, 3, 3, seed),
        ),
        (
            format!("uniform-12x6x4/{seed}"),
            bss_gen::uniform(12, 6, 4, seed),
        ),
    ]
}

/// Sequence-dependent instances inside the seqdep oracle gate (≤ 8 classes,
/// ≤ 4 machines). Includes a uniform instance so the bit-exact batch-setup
/// reduction path is chaos-swept too.
#[must_use]
pub fn gate_seqdep_instances(seed: u64) -> Vec<(String, SeqDepInstance)> {
    vec![
        (
            format!("triangle-violating-6x3/{seed}"),
            bss_gen::seqdep::triangle_violating(6, 3, seed),
        ),
        (
            format!("uniform-setups-5x2/{seed}"),
            bss_gen::seqdep::uniform_setups(5, 2, seed),
        ),
    ]
}

/// Dry-runs the solve under an unlimited budget and reports how many budget
/// checkpoints it passes — the sweep range for "inject a fault at the k-th
/// checkpoint". Deterministic for a fixed `(instance, variant, algo)`.
///
/// # Panics
/// If the unlimited dry run errors or reports a degraded completion
/// (both impossible by the equivalence contract).
#[must_use]
pub fn bss_checkpoints(inst: &Instance, variant: Variant, algo: Algorithm) -> u64 {
    let budget = SolveBudget::unlimited();
    let sol = bss_core::solve_budgeted(inst, variant, algo, &budget)
        .expect("unlimited dry run cannot fail");
    assert_eq!(sol.completion, Completion::Full);
    budget.checkpoints()
}

/// [`bss_checkpoints`] for a sequence-dependent solve.
///
/// # Panics
/// See [`bss_checkpoints`].
#[must_use]
pub fn seqdep_checkpoints(sd: &SeqDepInstance, algo: Algorithm) -> u64 {
    let budget = SolveBudget::unlimited();
    let sol =
        bss_core::solve_seqdep_budgeted(sd, algo, &budget).expect("unlimited dry run cannot fail");
    assert_eq!(sol.completion, Completion::Full);
    budget.checkpoints()
}

/// The exact optimum of a gate-sized batch-setup instance, when the oracle
/// closes it.
#[must_use]
pub fn bss_opt(inst: &Instance, variant: Variant) -> Option<Rational> {
    let ex = bss_exact::solve_bss(inst, variant, &bss_exact::ExactConfig::default()).ok()?;
    ex.opt()
}

/// The exact optimum of a gate-sized sequence-dependent instance, when the
/// oracle closes it.
#[must_use]
pub fn seqdep_opt(sd: &SeqDepInstance) -> Option<Rational> {
    let ex = bss_exact::solve_seqdep(sd, &bss_exact::ExactConfig::default()).ok()?;
    ex.opt()
}

/// Asserts the full anytime contract on a batch-setup [`Solution`] —
/// interrupted or not:
///
/// * the schedule is validate-clean for `variant`;
/// * `makespan` is the schedule's true makespan;
/// * `makespan <= ratio_bound · accepted` (the constructive invariant);
/// * `0 < certificate <= makespan`;
/// * against a closed OPT: `certificate <= OPT <= makespan` (no lying
///   certificate) and `makespan <= ratio_bound · OPT` (no lying ratio —
///   batch-setup probes certify, so `ratio_bound` is a claim versus OPT).
///
/// # Panics
/// When any invariant fails; `label` identifies the offending case.
pub fn assert_anytime_bss(
    label: &str,
    inst: &Instance,
    variant: Variant,
    sol: &Solution,
    opt: Option<Rational>,
) {
    let v = bss_schedule::validate(sol.schedule(), inst, variant);
    assert!(v.is_empty(), "{label}: invalid schedule: {v:?}");
    assert_eq!(
        sol.makespan,
        sol.schedule().makespan(),
        "{label}: reported makespan is not the schedule's"
    );
    assert!(
        sol.makespan <= sol.ratio_bound * sol.accepted,
        "{label}: makespan {} > ratio {} x accepted {}",
        sol.makespan,
        sol.ratio_bound,
        sol.accepted
    );
    assert!(
        sol.certificate.is_positive(),
        "{label}: non-positive certificate {}",
        sol.certificate
    );
    assert!(
        sol.certificate <= sol.makespan,
        "{label}: certificate {} above makespan {}",
        sol.certificate,
        sol.makespan
    );
    if let Some(opt) = opt {
        assert!(
            sol.certificate <= opt,
            "{label}: lying certificate {} > OPT {opt}",
            sol.certificate
        );
        assert!(
            opt <= sol.makespan,
            "{label}: makespan {} below OPT {opt}",
            sol.makespan
        );
        assert!(
            sol.makespan <= sol.ratio_bound * opt,
            "{label}: lying ratio_bound — makespan {} > {} x OPT {opt}",
            sol.makespan,
            sol.ratio_bound
        );
    }
}

/// Asserts the anytime contract on a sequence-dependent [`Solution`].
/// Sequence-dependent probes do not certify (`ratio_bound` is constructive
/// versus `accepted`, not a claim versus OPT), so the oracle cross-check is
/// limited to `certificate <= OPT <= makespan`.
///
/// # Panics
/// When any invariant fails; `label` identifies the offending case.
pub fn assert_anytime_seqdep(
    label: &str,
    sd: &SeqDepInstance,
    sol: &Solution,
    opt: Option<Rational>,
) {
    let _ = sd;
    assert_eq!(
        sol.makespan,
        sol.schedule().makespan(),
        "{label}: reported makespan is not the schedule's"
    );
    assert!(
        sol.makespan <= sol.ratio_bound * sol.accepted,
        "{label}: makespan {} > ratio {} x accepted {}",
        sol.makespan,
        sol.ratio_bound,
        sol.accepted
    );
    assert!(
        sol.certificate <= sol.makespan,
        "{label}: certificate {} above makespan {}",
        sol.certificate,
        sol.makespan
    );
    if let Some(opt) = opt {
        assert!(
            sol.certificate <= opt,
            "{label}: lying certificate {} > OPT {opt}",
            sol.certificate
        );
        assert!(
            opt <= sol.makespan,
            "{label}: makespan {} below OPT {opt}",
            sol.makespan
        );
    }
}

/// Compares two solutions field-for-field, placements included — the
/// bit-identity check behind both the unlimited-equivalence and the
/// workspace-poisoning suites.
///
/// # Panics
/// When any field differs; `label` identifies the offending case.
pub fn assert_bit_identical(label: &str, a: &Solution, b: &Solution) {
    assert_eq!(a.makespan, b.makespan, "{label}: makespan");
    assert_eq!(a.accepted, b.accepted, "{label}: accepted");
    assert_eq!(a.ratio_bound, b.ratio_bound, "{label}: ratio_bound");
    assert_eq!(a.certificate, b.certificate, "{label}: certificate");
    assert_eq!(a.probes, b.probes, "{label}: probes");
    assert_eq!(a.completion, b.completion, "{label}: completion");
    assert_eq!(
        a.schedule().placements(),
        b.schedule().placements(),
        "{label}: placements"
    );
}

/// How many instance seeds the suite sweeps: scaled by `BSS_PROPTEST_CASES`
/// (the workspace-wide knob the nightly CI raises), default 2.
#[must_use]
pub fn case_seeds() -> u64 {
    match std::env::var("BSS_PROPTEST_CASES") {
        Ok(v) => v.parse::<u64>().map_or(2, |n| (n / 64).clamp(2, 32)),
        Err(_) => 2,
    }
}

/// Whether to sweep *every* checkpoint index (`BSS_CHAOS_EXHAUSTIVE=1`, the
/// nightly mode) instead of the deterministic per-push subset.
#[must_use]
pub fn exhaustive() -> bool {
    std::env::var("BSS_CHAOS_EXHAUSTIVE").is_ok_and(|v| v != "0")
}

/// The checkpoint indices to inject faults at, for a solve that passes
/// `total` checkpoints: all of `1..=total` when [`exhaustive`], else a
/// deterministic boundary-heavy subset (first few, quartiles, last) — the
/// indices where wind-down logic changes shape.
#[must_use]
pub fn sweep_indices(total: u64) -> Vec<u64> {
    if total == 0 {
        return Vec::new();
    }
    if exhaustive() {
        return (1..=total).collect();
    }
    let mut picks = vec![
        1,
        2,
        3,
        total / 4,
        total / 2,
        3 * total / 4,
        total.saturating_sub(1),
        total,
    ];
    picks.retain(|&k| (1..=total).contains(&k));
    picks.sort_unstable();
    picks.dedup();
    picks
}

/// A fresh workspace (re-exported constructor, for test ergonomics).
#[must_use]
pub fn fresh_workspace() -> DualWorkspace {
    DualWorkspace::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_indices_cover_boundaries() {
        assert_eq!(sweep_indices(0), Vec::<u64>::new());
        assert_eq!(sweep_indices(1), vec![1]);
        assert_eq!(sweep_indices(2), vec![1, 2]);
        let s = sweep_indices(100);
        assert!(s.contains(&1) && s.contains(&100) && s.contains(&50));
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn gate_instances_fit_the_oracle_gate() {
        for (name, inst) in gate_instances(0) {
            assert!(inst.num_jobs() <= 12, "{name}");
            assert!(inst.machines() <= 4, "{name}");
            assert!(inst.num_classes() <= 6, "{name}");
        }
        for (name, sd) in gate_seqdep_instances(0) {
            assert!(sd.num_classes() <= 8, "{name}");
            assert!(sd.machines() <= 4, "{name}");
        }
    }

    #[test]
    fn checkpoint_dry_run_is_deterministic() {
        let inst = bss_gen::uniform(10, 3, 3, 7);
        for algo in ALGORITHMS {
            let a = bss_checkpoints(&inst, Variant::Preemptive, algo);
            let b = bss_checkpoints(&inst, Variant::Preemptive, algo);
            assert_eq!(a, b);
            assert!(a > 0, "every search-bearing mode probes at least once");
        }
    }
}
