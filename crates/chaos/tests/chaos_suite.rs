//! The differential anytime-invariant suite.
//!
//! For every gate-sized instance, every variant and every search-bearing
//! algorithm, this suite injects each fault kind at a sweep of checkpoint
//! indices (every index under `BSS_CHAOS_EXHAUSTIVE=1`) and asserts the
//! workspace-wide invariant: **any interruption yields either a valid,
//! certified, validate-clean solution or a typed error — never an escaped
//! panic, never an invalid schedule, never a lying bound** — cross-checked
//! against the `bss-exact` oracle wherever it closes the instance.

use bss_budget::{Fault, FaultPlan, Interrupt, SolveBudget};
use bss_chaos::{
    assert_anytime_bss, assert_anytime_seqdep, assert_bit_identical, bss_checkpoints, bss_opt,
    case_seeds, gate_instances, gate_seqdep_instances, seqdep_checkpoints, seqdep_opt,
    sweep_indices, ALGORITHMS,
};
use bss_core::{
    solve, solve_budgeted, solve_budgeted_with, solve_seqdep, solve_seqdep_budgeted, solve_with,
    CancelToken, Completion, DualWorkspace, SolveError,
};
use bss_instance::Variant;

/// Runs `f` with panic messages silenced (the panic-injection sweeps would
/// otherwise spray hundreds of expected backtraces into the test log), then
/// restores the previous hook and re-raises any genuine failure.
fn with_silent_panics<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    drop(std::panic::take_hook());
    std::panic::set_hook(prev);
    match out {
        Ok(r) => r,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[test]
fn unlimited_budget_is_bit_identical_to_plain_solve() {
    for seed in 0..case_seeds() {
        for (name, inst) in gate_instances(seed) {
            for variant in Variant::ALL {
                for algo in ALGORITHMS {
                    let label = format!("{name}/{variant}/{algo:?}");
                    let plain = solve(&inst, variant, algo);
                    let budgeted = solve_budgeted(&inst, variant, algo, &SolveBudget::unlimited())
                        .expect("unlimited budget cannot fail");
                    assert_eq!(budgeted.completion, Completion::Full, "{label}");
                    assert_bit_identical(&label, &budgeted, &plain);
                }
            }
        }
        for (name, sd) in gate_seqdep_instances(seed) {
            for algo in ALGORITHMS {
                let label = format!("{name}/{algo:?}");
                let plain = solve_seqdep(&sd, algo);
                let budgeted = solve_seqdep_budgeted(&sd, algo, &SolveBudget::unlimited())
                    .expect("unlimited budget cannot fail");
                assert_eq!(budgeted.completion, Completion::Full, "{label}");
                assert_bit_identical(&label, &budgeted, &plain);
            }
        }
    }
}

#[test]
fn injected_cancel_at_swept_checkpoints_degrades_gracefully() {
    for seed in 0..case_seeds() {
        for (name, inst) in gate_instances(seed) {
            for variant in Variant::ALL {
                let opt = bss_opt(&inst, variant);
                for algo in ALGORITHMS {
                    let total = bss_checkpoints(&inst, variant, algo);
                    for k in sweep_indices(total) {
                        let label = format!("{name}/{variant}/{algo:?}/cancel@{k}");
                        let budget = SolveBudget::unlimited().with_fault(FaultPlan {
                            at: k,
                            fault: Fault::Cancel,
                        });
                        let sol = solve_budgeted(&inst, variant, algo, &budget)
                            .expect("cancellation is not an error");
                        assert_eq!(sol.completion, Completion::Cancelled, "{label}");
                        assert_anytime_bss(&label, &inst, variant, &sol, opt);
                    }
                }
            }
        }
    }
}

#[test]
fn injected_deadline_at_swept_checkpoints_degrades_gracefully() {
    for seed in 0..case_seeds() {
        for (name, inst) in gate_instances(seed) {
            for variant in Variant::ALL {
                let opt = bss_opt(&inst, variant);
                for algo in ALGORITHMS {
                    let total = bss_checkpoints(&inst, variant, algo);
                    for k in sweep_indices(total) {
                        let label = format!("{name}/{variant}/{algo:?}/deadline@{k}");
                        let budget = SolveBudget::unlimited().with_fault(FaultPlan {
                            at: k,
                            fault: Fault::DeadlineExpiry,
                        });
                        let sol = solve_budgeted(&inst, variant, algo, &budget)
                            .expect("deadline expiry is not an error");
                        assert_eq!(
                            sol.completion,
                            Completion::Degraded(Interrupt::Deadline),
                            "{label}"
                        );
                        assert_anytime_bss(&label, &inst, variant, &sol, opt);
                    }
                }
            }
        }
    }
}

#[test]
fn work_starvation_at_every_level_degrades_gracefully() {
    for seed in 0..case_seeds() {
        for (name, inst) in gate_instances(seed) {
            for variant in Variant::ALL {
                let opt = bss_opt(&inst, variant);
                for algo in ALGORITHMS {
                    let total = bss_checkpoints(&inst, variant, algo);
                    let mut levels: Vec<u64> = sweep_indices(total);
                    levels.push(0);
                    levels.push(total + 5);
                    for w in levels {
                        let label = format!("{name}/{variant}/{algo:?}/work={w}");
                        let budget = SolveBudget::unlimited().with_work_limit(w);
                        let sol = solve_budgeted(&inst, variant, algo, &budget)
                            .expect("starvation is not an error");
                        if w > total {
                            // Budget to spare: completes fully and matches
                            // the plain solve bit for bit.
                            assert_eq!(sol.completion, Completion::Full, "{label}");
                            assert_bit_identical(&label, &sol, &solve(&inst, variant, algo));
                        } else if w == total {
                            // Boundary: every probe fit exactly, but the
                            // budget now reads as spent. Search-only
                            // algorithms still complete fully; the portfolio
                            // honestly skips its exact arm and reports the
                            // exhaustion instead of claiming a full solve.
                            if matches!(algo, bss_core::Algorithm::Portfolio) {
                                assert_eq!(
                                    sol.completion,
                                    Completion::Degraded(Interrupt::WorkExhausted),
                                    "{label}"
                                );
                            } else {
                                assert_eq!(sol.completion, Completion::Full, "{label}");
                                assert_bit_identical(&label, &sol, &solve(&inst, variant, algo));
                            }
                        } else {
                            assert_eq!(
                                sol.completion,
                                Completion::Degraded(Interrupt::WorkExhausted),
                                "{label}"
                            );
                        }
                        assert_anytime_bss(&label, &inst, variant, &sol, opt);
                    }
                }
            }
        }
    }
}

#[test]
fn injected_panic_is_isolated_and_workspace_heals() {
    with_silent_panics(|| {
        for seed in 0..case_seeds() {
            for (name, inst) in gate_instances(seed) {
                for variant in Variant::ALL {
                    for algo in ALGORITHMS {
                        let total = bss_checkpoints(&inst, variant, algo);
                        let baseline = solve(&inst, variant, algo);
                        let mut ws = DualWorkspace::new();
                        for k in sweep_indices(total) {
                            let label = format!("{name}/{variant}/{algo:?}/panic@{k}");
                            let budget = SolveBudget::unlimited().with_fault(FaultPlan {
                                at: k,
                                fault: Fault::Panic,
                            });
                            let err = solve_budgeted_with(&mut ws, &inst, variant, algo, &budget)
                                .expect_err("injected panic must surface as an error");
                            match &err {
                                SolveError::Panicked { message } => assert!(
                                    message.contains("injected panic"),
                                    "{label}: unexpected message {message:?}"
                                ),
                                other => panic!("{label}: unexpected error {other:?}"),
                            }
                            // Workspace-poisoning regression: the aborted
                            // solve must leave no residue — the same
                            // workspace, reused, is bit-identical to fresh.
                            let healed = solve_with(&mut ws, &inst, variant, algo);
                            assert_bit_identical(&label, &healed, &baseline);
                        }
                    }
                }
            }
        }
    });
}

#[test]
fn seqdep_faults_at_swept_checkpoints_degrade_gracefully() {
    for seed in 0..case_seeds() {
        for (name, sd) in gate_seqdep_instances(seed) {
            let opt = seqdep_opt(&sd);
            for algo in ALGORITHMS {
                let total = seqdep_checkpoints(&sd, algo);
                for k in sweep_indices(total) {
                    for (fault, expect) in [
                        (Fault::Cancel, Completion::Cancelled),
                        (
                            Fault::DeadlineExpiry,
                            Completion::Degraded(Interrupt::Deadline),
                        ),
                    ] {
                        let label = format!("{name}/{algo:?}/{fault:?}@{k}");
                        let budget =
                            SolveBudget::unlimited().with_fault(FaultPlan { at: k, fault });
                        let sol = solve_seqdep_budgeted(&sd, algo, &budget)
                            .expect("interruption is not an error");
                        assert_eq!(sol.completion, expect, "{label}");
                        assert_anytime_seqdep(&label, &sd, &sol, opt);
                    }
                }
                // Work starvation, including the zero-budget floor.
                for w in [0, 1, total / 2] {
                    let label = format!("{name}/{algo:?}/work={w}");
                    let budget = SolveBudget::unlimited().with_work_limit(w);
                    let sol = solve_seqdep_budgeted(&sd, algo, &budget)
                        .expect("starvation is not an error");
                    assert_anytime_seqdep(&label, &sd, &sol, opt);
                }
            }
        }
    }
}

#[test]
fn seqdep_injected_panic_is_isolated() {
    with_silent_panics(|| {
        for (name, sd) in gate_seqdep_instances(1) {
            for algo in ALGORITHMS {
                let total = seqdep_checkpoints(&sd, algo);
                for k in sweep_indices(total) {
                    let label = format!("{name}/{algo:?}/panic@{k}");
                    let budget = SolveBudget::unlimited().with_fault(FaultPlan {
                        at: k,
                        fault: Fault::Panic,
                    });
                    let err = solve_seqdep_budgeted(&sd, algo, &budget)
                        .expect_err("injected panic must surface as an error");
                    assert!(
                        matches!(&err, SolveError::Panicked { message } if message.contains("injected panic")),
                        "{label}: unexpected error {err:?}"
                    );
                }
            }
        }
    });
}

#[test]
fn pre_cancelled_token_still_returns_a_valid_fallback() {
    let token = CancelToken::new();
    token.cancel();
    for (name, inst) in gate_instances(3) {
        for variant in Variant::ALL {
            let opt = bss_opt(&inst, variant);
            for algo in ALGORITHMS {
                let label = format!("{name}/{variant}/{algo:?}/pre-cancelled");
                let budget = SolveBudget::unlimited().with_cancel(&token);
                let sol = solve_budgeted(&inst, variant, algo, &budget)
                    .expect("cancellation is not an error");
                assert_eq!(sol.completion, Completion::Cancelled, "{label}");
                assert_anytime_bss(&label, &inst, variant, &sol, opt);
            }
        }
    }
}
