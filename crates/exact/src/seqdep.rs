//! Exact sequence-dependent optima: branch-and-bound over per-machine
//! class orders.
//!
//! The model batches each class (see `bss_seqdep`), so a solution is an
//! ordered partition of the classes over the machines. The search builds
//! that partition **machine by machine**: at each node it either appends
//! any remaining class to the current machine's sequence or closes the
//! machine and opens the next — which, unlike appending classes in one
//! fixed global order, reaches *every* per-machine ordering (on a single
//! machine it degenerates to the full TSP-path search). Machines are
//! interchangeable, so only partitions whose first classes increase across
//! machines are explored. Bounds are big-M-free — spreading the open work
//! (each remaining class at its best possible entry `min_in(i) + p_i`) over
//! the machines that can still receive it, plus the largest single
//! remaining entry — and identical open states (remaining set, machines
//! left, current finish/last/first, closed profile digest) are memoized:
//! different orderings of the same class set on a machine that reach the
//! same `(finish, last)` collapse, Held–Karp style.

use std::collections::HashSet;

use bss_rational::Rational;
use bss_schedule::Schedule;
use bss_seqdep::{solver, SeqDepInstance};

use crate::{ExactSolve, ExactStatus, NodeBudget};

/// Past this many memo entries the table stops growing (pruning weakens,
/// exactness does not).
const MEMO_CAP: usize = 500_000;

/// Marks the current machine as still empty.
const FRESH: usize = usize::MAX;

/// A memoized open state: everything the subtree's outcome depends on.
type MemoKey = (u32, usize, u64, usize, usize, u64, u64);

struct Search<'a> {
    sd: &'a SeqDepInstance,
    /// Class ids, heaviest (`min_in + p`) first — the branching order.
    order: Vec<usize>,
    /// `entry[i]` = `min_in(i) + p_i`, the cheapest way class `i` can ever
    /// extend any machine.
    entry: Vec<u64>,
    /// Current per-machine class orders.
    orders: Vec<Vec<usize>>,
    best: u64,
    best_orders: Vec<Vec<usize>>,
    memo: HashSet<MemoKey>,
    root_lb: u64,
}

impl Search<'_> {
    /// Branch on the current machine's next class, or close the machine.
    ///
    /// `mask` holds the still-unplaced classes; `left` counts the machines
    /// that can still receive work (the current one included); `finish` /
    /// `last` describe the current machine's sequence so far (`FRESH` =
    /// empty); `floor` is the symmetry-breaking threshold — a fresh
    /// machine's first class must be `>= floor`, and a non-fresh machine
    /// carries `first + 1` here so closing just hands it down; `done_max` /
    /// `done_sum` digest the closed machines.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &mut self,
        mask: u32,
        left: usize,
        finish: u64,
        last: usize,
        floor: usize,
        done_max: u64,
        done_sum: u64,
        budget: &mut NodeBudget<'_>,
    ) {
        if !budget.tick() || self.best == self.root_lb {
            return;
        }
        if mask == 0 {
            let makespan = done_max.max(finish);
            if makespan < self.best {
                self.best = makespan;
                self.best_orders = self.orders.clone();
            }
            return;
        }
        // Spread bound: every remaining class extends one of the `left`
        // still-open machines by at least its cheapest entry, and one of
        // those machines already holds `finish`.
        let rem_sum: u64 = self
            .order
            .iter()
            .filter(|&&i| mask & (1 << i) != 0)
            .map(|&i| self.entry[i])
            .sum();
        let spread = (finish + rem_sum).div_ceil(left as u64);
        // All-machine average (can dominate when the closed machines are
        // light) and the largest single remaining entry.
        let avg = (done_sum + finish + rem_sum).div_ceil(self.orders.len() as u64);
        let max_entry = self
            .order
            .iter()
            .filter(|&&i| mask & (1 << i) != 0)
            .map(|&i| self.entry[i])
            .max()
            .unwrap_or(0);
        if done_max.max(finish).max(spread).max(avg).max(max_entry) >= self.best {
            return;
        }
        if self.memo.len() < MEMO_CAP
            && !self
                .memo
                .insert((mask, left, finish, last, floor, done_max, done_sum))
        {
            return;
        }
        let machine = self.orders.len() - left;
        for k in 0..self.order.len() {
            let class = self.order[k];
            if mask & (1 << class) == 0 {
                continue;
            }
            let (setup, next_floor) = if last == FRESH {
                if class < floor {
                    continue; // symmetry: first classes increase by machine
                }
                (self.sd.initial(class), class + 1)
            } else {
                (self.sd.switch(last, class), floor)
            };
            let extended = finish + setup + self.sd.class_proc(class);
            if extended >= self.best {
                continue;
            }
            self.orders[machine].push(class);
            self.dfs(
                mask & !(1 << class),
                left,
                extended,
                class,
                next_floor,
                done_max,
                done_sum,
                budget,
            );
            self.orders[machine].pop();
            if budget.exhausted() {
                return;
            }
        }
        // Close the (non-empty) current machine and open the next one.
        if last != FRESH && left > 1 {
            self.dfs(
                mask,
                left - 1,
                0,
                FRESH,
                floor,
                done_max.max(finish),
                done_sum + finish,
                budget,
            );
        }
    }
}

/// Exact seqdep solve: closes on every instance within the size limits
/// unless the node budget runs out first.
pub(crate) fn solve(sd: &SeqDepInstance, budget: &mut NodeBudget<'_>) -> ExactSolve {
    let c = sd.num_classes();
    let mut order: Vec<usize> = (0..c).collect();
    let entry: Vec<u64> = (0..c).map(|i| sd.min_in(i) + sd.class_proc(i)).collect();
    order.sort_by_key(|&i| std::cmp::Reverse((entry[i], i)));
    let incumbent = bss_seqdep::nearest_neighbor_schedule(sd);
    let root_lb_rat = bss_seqdep::t_min(sd);
    let root_lb = root_lb_rat.ceil().max(0) as u64;
    let mut search = Search {
        sd,
        order,
        entry,
        orders: vec![Vec::new(); sd.machines()],
        best: sd.makespan(&incumbent),
        best_orders: incumbent,
        memo: HashSet::new(),
        root_lb,
    };
    search.dfs((1u32 << c) - 1, sd.machines(), 0, FRESH, 0, 0, 0, budget);
    let closed = !budget.exhausted();
    let mut schedule = Schedule::new(sd.machines());
    solver::emit_orders(sd, &search.best_orders, &mut schedule);
    // Zero-length placements are dropped on emission, so the recorded
    // schedule may end short of the model makespan (e.g. zero-work TSP
    // classes); `upper` reports the model makespan.
    let upper = Rational::from(search.best);
    debug_assert!(schedule.makespan() <= upper);
    ExactSolve {
        lower: if closed {
            upper
        } else {
            Rational::from(root_lb).min(upper)
        },
        upper,
        nodes: budget.used(),
        status: if closed {
            ExactStatus::Closed
        } else {
            ExactStatus::Budget
        },
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive reference: enumerate every assignment of classes to
    /// machines and every per-machine permutation.
    fn brute_force(sd: &SeqDepInstance) -> u64 {
        fn perms(v: &[usize]) -> Vec<Vec<usize>> {
            if v.is_empty() {
                return vec![Vec::new()];
            }
            let mut out = Vec::new();
            for i in 0..v.len() {
                let mut rest = v.to_vec();
                let x = rest.remove(i);
                for mut p in perms(&rest) {
                    p.insert(0, x);
                    out.push(p);
                }
            }
            out
        }
        let (c, m) = (sd.num_classes(), sd.machines());
        let mut best = u64::MAX;
        let mut assign = vec![0usize; c];
        loop {
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); m];
            for (class, &u) in assign.iter().enumerate() {
                groups[u].push(class);
            }
            let per: Vec<Vec<Vec<usize>>> = groups.iter().map(|g| perms(g)).collect();
            let mut idx = vec![0usize; m];
            loop {
                let orders: Vec<Vec<usize>> = (0..m).map(|u| per[u][idx[u]].clone()).collect();
                best = best.min(sd.makespan(&orders));
                let mut k = 0;
                while k < m {
                    idx[k] += 1;
                    if idx[k] < per[k].len() {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == m {
                    break;
                }
            }
            let mut k = 0;
            while k < c {
                assign[k] += 1;
                if assign[k] < m {
                    break;
                }
                assign[k] = 0;
                k += 1;
            }
            if k == c {
                break;
            }
        }
        best
    }

    /// The regression for the historical fixed-append-order search, which
    /// could only produce per-machine sequences respecting one global class
    /// order and certified `tiny_seqdep(11)` as OPT = 37 when a 32 exists.
    #[test]
    fn closes_at_the_brute_force_optimum() {
        for seed in 0..40 {
            let sd = bss_gen::seqdep::tiny_seqdep(seed);
            if sd.num_classes() > 5 {
                continue; // keep the factorial reference cheap
            }
            let mut budget = NodeBudget::new(crate::ExactConfig::default().max_nodes);
            let ex = solve(&sd, &mut budget);
            assert_eq!(ex.status, ExactStatus::Closed, "seed {seed}");
            assert_eq!(
                ex.upper,
                Rational::from(brute_force(&sd)),
                "seed {seed}: search disagrees with exhaustive enumeration"
            );
        }
    }

    #[test]
    fn single_machine_matches_the_held_karp_oracle() {
        for seed in 0..10 {
            let sd = bss_gen::seqdep::tsp_path(8, seed);
            let mut budget = NodeBudget::new(crate::ExactConfig::default().max_nodes);
            let ex = solve(&sd, &mut budget);
            assert_eq!(ex.status, ExactStatus::Closed, "seed {seed}");
            assert_eq!(
                ex.upper,
                Rational::from(bss_seqdep::exact_single_machine(&sd)),
                "seed {seed}"
            );
        }
    }
}
