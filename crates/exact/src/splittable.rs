//! Exact splittable optima via coverage enumeration.
//!
//! A splittable schedule may, WLOG, set up each class at most once per
//! machine (merging two runs of one class on one machine drops a setup and
//! only shrinks the load, and splittable pieces carry no time constraints).
//! The *coverage* `U_i` — which machines set up class `i` — therefore
//! determines the minimal feasible makespan exactly: it is the
//! Gale–Hoffman transportation bound [`bounds::coverage_gale_bound`], and
//! the optimum is its minimum over all coverages. The search enumerates
//! coverages depth-first with monotone partial bounds; the winning coverage
//! is realized through an exact-rational transportation flow.

use bss_instance::Instance;
use bss_rational::Rational;
use bss_schedule::Schedule;

use crate::bounds;
use crate::flow::Flow;
use crate::{ExactSolve, ExactStatus, NodeBudget};

/// Classes that actually need a setup somewhere: those with work.
pub(crate) fn active_classes(inst: &Instance) -> Vec<usize> {
    let mut active: Vec<usize> = (0..inst.num_classes())
        .filter(|&i| inst.class_proc(i) > 0)
        .collect();
    // Heaviest classes first: their masks dominate the bound, so wrong
    // choices are pruned high in the tree.
    active.sort_by_key(|&i| std::cmp::Reverse(inst.setup(i) + inst.class_proc(i)));
    active
}

/// Greedy incumbent: each class on the single machine with the least
/// resulting load (a valid coverage, so its Gale bound is a feasible
/// makespan).
pub(crate) fn greedy_coverage(inst: &Instance, active: &[usize]) -> Vec<u32> {
    let mut coverage = vec![0u32; inst.num_classes()];
    let mut load = vec![0u64; inst.machines()];
    for &i in active {
        let add = inst.setup(i) + inst.class_proc(i);
        let u = (0..inst.machines())
            .min_by_key(|&u| load[u] + add)
            .expect("at least one machine");
        load[u] += add;
        coverage[i] = 1 << u;
    }
    coverage
}

/// A lower bound on the Gale bound of any *completion* of a partial
/// coverage (classes `active[depth..]` unassigned): the partial Gale bound
/// itself (monotone in assigned classes), the full-machine-set average with
/// every unassigned class contributing its minimum `s_i + P_i`, and each
/// unassigned class's own spread bound.
pub(crate) fn partial_bound(
    inst: &Instance,
    coverage: &[u32],
    active: &[usize],
    depth: usize,
) -> Rational {
    let m = inst.machines() as u64;
    let mut bound = bounds::coverage_gale_bound(inst, coverage);
    let mut total: u64 = inst.total_proc();
    for (i, &mask) in coverage.iter().enumerate() {
        total += inst.setup(i) * u64::from(mask.count_ones());
    }
    let mut spread = Rational::ZERO;
    for &i in &active[depth..] {
        total += inst.setup(i);
        spread = spread.max(
            Rational::from(inst.setup(i)) + Rational::from(inst.class_proc(i)) / Rational::from(m),
        );
    }
    bound = bound.max(Rational::from(total) / Rational::from(m));
    bound.max(spread)
}

struct Search<'a> {
    inst: &'a Instance,
    active: Vec<usize>,
    best_t: Rational,
    best_cov: Vec<u32>,
    lower_target: Rational,
}

impl Search<'_> {
    fn dfs(&mut self, coverage: &mut Vec<u32>, depth: usize, budget: &mut NodeBudget<'_>) {
        if !budget.tick() {
            return;
        }
        if self.best_t == self.lower_target {
            return; // already optimal, nothing below the root bound exists
        }
        if depth == self.active.len() {
            let t = bounds::coverage_gale_bound(self.inst, coverage);
            if t < self.best_t {
                self.best_t = t;
                self.best_cov = coverage.clone();
            }
            return;
        }
        let class = self.active[depth];
        let m = self.inst.machines();
        for mask in 1u32..(1 << m) {
            coverage[class] = mask;
            if partial_bound(self.inst, coverage, &self.active, depth + 1) < self.best_t {
                self.dfs(coverage, depth + 1, budget);
            }
            if budget.exhausted() {
                break;
            }
        }
        coverage[class] = 0;
    }
}

/// Exact splittable solve: always closes unless the node budget runs out.
pub(crate) fn solve(inst: &Instance, budget: &mut NodeBudget<'_>) -> ExactSolve {
    let active = active_classes(inst);
    if active.is_empty() {
        return ExactSolve {
            lower: Rational::ZERO,
            upper: Rational::ZERO,
            nodes: budget.used(),
            status: ExactStatus::Closed,
            schedule: Schedule::new(inst.machines()),
        };
    }
    let greedy = greedy_coverage(inst, &active);
    let mut search = Search {
        inst,
        best_t: bounds::coverage_gale_bound(inst, &greedy),
        best_cov: greedy,
        lower_target: bounds::splittable_root_bound(inst),
        active,
    };
    let mut coverage = vec![0u32; inst.num_classes()];
    search.dfs(&mut coverage, 0, budget);
    let closed = !budget.exhausted();

    let schedule = transportation(inst, &search.best_cov, search.best_t, budget)
        .map(|x| realize(inst, &search.best_cov, &x))
        .unwrap_or_else(|| {
            // Unreachable by Gale–Hoffman; fall back to an empty schedule
            // only if the budget died inside the realization flow.
            Schedule::new(inst.machines())
        });
    let upper = if schedule.placements().is_empty() {
        search.best_t
    } else {
        schedule.makespan()
    };
    let lower = if closed {
        debug_assert_eq!(upper, search.best_t, "realized makespan must hit the bound");
        upper
    } else {
        bounds::splittable_root_bound(inst).min(upper)
    };
    ExactSolve {
        lower,
        upper,
        nodes: budget.used(),
        status: if closed {
            ExactStatus::Closed
        } else {
            ExactStatus::Budget
        },
        schedule,
    }
}

/// All complete coverages whose Gale bound is `≤ t`, up to `cap` of them
/// (used by the preemptive realization, which tries each as a run layout).
pub(crate) fn coverages_within(
    inst: &Instance,
    t: Rational,
    budget: &mut NodeBudget<'_>,
    cap: usize,
) -> Vec<Vec<u32>> {
    let active = active_classes(inst);
    let mut out = Vec::new();
    let mut coverage = vec![0u32; inst.num_classes()];
    fn dfs(
        inst: &Instance,
        active: &[usize],
        coverage: &mut Vec<u32>,
        depth: usize,
        t: Rational,
        budget: &mut NodeBudget<'_>,
        cap: usize,
        out: &mut Vec<Vec<u32>>,
    ) {
        if out.len() >= cap || !budget.tick() {
            return;
        }
        if depth == active.len() {
            if bounds::coverage_gale_bound(inst, coverage) <= t {
                out.push(coverage.clone());
            }
            return;
        }
        for mask in 1u32..(1 << inst.machines()) {
            coverage[active[depth]] = mask;
            if partial_bound(inst, coverage, active, depth + 1) <= t {
                dfs(inst, active, coverage, depth + 1, t, budget, cap, out);
            }
            if out.len() >= cap || budget.exhausted() {
                break;
            }
        }
        coverage[active[depth]] = 0;
    }
    dfs(inst, &active, &mut coverage, 0, t, budget, cap, &mut out);
    out
}

/// The transportation step: amounts `x[class][machine]` with `Σ_u x[i][u] =
/// P_i`, `x[i][u] = 0` off-coverage and machine loads `base_u + Σ_i x[i][u]
/// ≤ t`. `None` iff `t` is below the coverage's Gale bound (or the flow
/// budget died).
pub(crate) fn transportation(
    inst: &Instance,
    coverage: &[u32],
    t: Rational,
    budget: &mut NodeBudget<'_>,
) -> Option<Vec<Vec<Rational>>> {
    budget.tick();
    let (c, m) = (inst.num_classes(), inst.machines());
    let (source, sink) = (c + m, c + m + 1);
    let mut f = Flow::new(c + m + 2);
    let mut base = vec![0u64; m];
    for (i, &mask) in coverage.iter().enumerate() {
        for (u, b) in base.iter_mut().enumerate() {
            if mask & (1 << u) != 0 {
                *b += inst.setup(i);
            }
        }
    }
    let mut demand = Rational::ZERO;
    let mut class_edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); c];
    for (i, &mask) in coverage.iter().enumerate() {
        if mask == 0 {
            continue;
        }
        let p = Rational::from(inst.class_proc(i));
        demand += p;
        f.add_edge(source, i, p);
        for u in 0..m {
            if mask & (1 << u) != 0 {
                class_edges[i].push((u, f.add_edge(i, c + u, p)));
            }
        }
    }
    for (u, &b) in base.iter().enumerate() {
        let room = t - Rational::from(b);
        if room.is_negative() {
            return None;
        }
        f.add_edge(c + u, sink, room);
    }
    if f.max_flow(source, sink) != demand {
        return None;
    }
    let mut x = vec![vec![Rational::ZERO; m]; c];
    for (i, edges) in class_edges.iter().enumerate() {
        for &(u, id) in edges {
            x[i][u] = f.flow(id);
        }
    }
    Some(x)
}

/// Emits the class-contiguous splittable schedule for a transportation
/// solution: per machine, ascending classes, each as one `setup + pieces`
/// run; class work is sliced over its machines in ascending order, so a job
/// may split mid-piece across machines (legal for this variant). Runs with
/// `x = 0` are dropped (their setups are not needed, which can only lower
/// the makespan).
pub(crate) fn realize(inst: &Instance, coverage: &[u32], x: &[Vec<Rational>]) -> Schedule {
    let m = inst.machines();
    // pieces[u] = ascending-class list of (class, [(job, len)]).
    let mut pieces: Vec<Vec<(usize, Vec<(usize, Rational)>)>> = vec![Vec::new(); m];
    for (i, &mask) in coverage.iter().enumerate() {
        if mask == 0 {
            continue;
        }
        let jobs = inst.class_jobs(i);
        let mut job_idx = 0usize;
        let mut remaining = jobs
            .first()
            .map(|&j| Rational::from(inst.job(j).time))
            .unwrap_or(Rational::ZERO);
        for u in 0..m {
            let mut need = x[i][u];
            if !need.is_positive() {
                continue;
            }
            let mut run = Vec::new();
            while need.is_positive() && job_idx < jobs.len() {
                let take = need.min(remaining);
                if take.is_positive() {
                    run.push((jobs[job_idx], take));
                    need -= take;
                    remaining -= take;
                }
                if !remaining.is_positive() {
                    job_idx += 1;
                    remaining = jobs
                        .get(job_idx)
                        .map(|&j| Rational::from(inst.job(j).time))
                        .unwrap_or(Rational::ZERO);
                }
            }
            pieces[u].push((i, run));
        }
    }
    let mut out = Schedule::new(m);
    for (u, runs) in pieces.iter().enumerate() {
        let mut cursor = Rational::ZERO;
        for (class, run) in runs {
            // Zero-length setups are emitted too: the validator's timeline
            // sweep breaks start ties by insertion order, so the setup still
            // configures the machine before its pieces.
            let s = Rational::from(inst.setup(*class));
            out.push_setup(u, cursor, s, *class);
            cursor += s;
            for &(job, len) in run {
                out.push_piece(u, cursor, len, job, *class);
                cursor += len;
            }
        }
    }
    out
}
