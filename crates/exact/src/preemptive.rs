//! Exact preemptive optima via a coverage-aware sandwich, closed from
//! below by an exact wrap-around realization.
//!
//! The certified lower bound is `L = max(min_U max(gale(U), jobcap(U)),
//! setup_job_bound)` where `U` ranges over coverages (which machines set a
//! class up):
//!
//! * `gale(U)` is the splittable transportation bound — valid because
//!   splittable relaxes preemptive;
//! * `jobcap(U)` is the *job-capacity* bound: a job `j` of class `i` runs
//!   only on machines in `U_i`, and machine `u` has at most
//!   `T − base_u − forced_u` time left for it, where `forced_u` is the
//!   work of classes covered *only* by `u`. Summing over `U_i` and solving
//!   for `T` is a pure capacity argument, so it stays valid even for
//!   schedules that set a class up twice on one machine (extra setups only
//!   shrink capacity).
//!
//! The oracle closes by either `L == OPT_nonp` (a non-preemptive optimum
//! is preemptively feasible) or *realizing* a preemptive schedule of
//! makespan exactly `L`: pick a coverage with Gale bound `≤ L`, a
//! transportation solution `x`, lay each machine out as class-contiguous
//! runs `setup_i + x_{i,u}` in some order, and assign job pieces of each
//! class to its run intervals by a max-flow over elementary time slots
//! (job-per-slot caps enforce no-self-overlap); the per-slot piece matrix
//! is peeled into matchings (the Birkhoff-style open-shop decomposition),
//! which yields actual placements. All orders are tried, capped.
//!
//! When neither closes the gap, realization is retried at the integer
//! candidates between the bounds to tighten `upper`, and the result is the
//! honest sandwich with [`ExactStatus::Gap`] — never a silent optimality
//! claim.

use bss_instance::Instance;
use bss_rational::Rational;
use bss_schedule::Schedule;

use crate::flow::Flow;
use crate::{bounds, nonpreemptive, splittable, ExactSolve, ExactStatus, NodeBudget};

/// Cap on coverages tried for the lower-bound realization.
const COVERAGE_CAP: usize = 64;
/// Cap on per-machine run-order combinations tried per coverage.
const ORDER_CAP: usize = 768;

/// The job-capacity bound for one coverage: the smallest `T` at which every
/// job fits into the residual capacity of its class's machines.
fn jobcap(inst: &Instance, coverage: &[u32]) -> Rational {
    let m = inst.machines();
    // base[u] = setups u pays; forced[u] = work of classes covered only by u.
    let mut base = vec![0u64; m];
    let mut forced = vec![0u64; m];
    for (i, &mask) in coverage.iter().enumerate() {
        for u in 0..m {
            if mask & (1 << u) != 0 {
                base[u] += inst.setup(i);
            }
        }
        if mask.count_ones() == 1 {
            forced[mask.trailing_zeros() as usize] += inst.class_proc(i);
        }
    }
    let mut best = Rational::ZERO;
    for (i, &mask) in coverage.iter().enumerate() {
        if mask == 0 {
            continue;
        }
        for &job in inst.class_jobs(i) {
            let tj = inst.job(job).time;
            // Machine thresholds c_u below which u contributes nothing; for
            // the job's own class, its work is not "other" work.
            let mut c: Vec<u64> = (0..m)
                .filter(|&u| mask & (1 << u) != 0)
                .map(|u| {
                    base[u] + forced[u]
                        - if mask.count_ones() == 1 {
                            inst.class_proc(i)
                        } else {
                            0
                        }
                })
                .collect();
            c.sort_unstable();
            // Minimal T with Σ_u max(0, T - c_u) ≥ t_j: try each prefix.
            let mut prefix = 0u64;
            for (r, &cu) in c.iter().enumerate() {
                prefix += cu;
                let t = Rational::new((tj + prefix) as i128, (r + 1) as i128);
                let active = t >= Rational::from(cu);
                let closes = r + 1 == c.len() || t <= Rational::from(c[r + 1]);
                if active && closes {
                    best = best.max(t);
                    break;
                }
            }
        }
    }
    best
}

/// Cap on position patterns enumerated per (coverage, job) in the pattern
/// bound; past it the bound falls back to the weaker capacity-only value.
const PATTERN_CAP: usize = 4096;

/// Denominator grid that contains every bound threshold for `m` machines:
/// `lcm(1..=m)` (cut slopes in the tiny union flows are at most `m`).
fn grid_denominator(m: usize) -> u64 {
    [1, 1, 2, 6, 12, 60][m.min(5)]
}

/// Position-aware feasibility check for *simple* schedules (at most one run
/// per machine and class) at makespan `t`: for every job, some choice of
/// "which other classes precede it" on each of its machines must leave
/// enough reachable window measure. Necessary, not sufficient.
fn pattern_feasible(
    inst: &Instance,
    coverage: &[u32],
    t: Rational,
    budget: &mut NodeBudget<'_>,
) -> bool {
    let m = inst.machines();
    let mut base = vec![0u64; m];
    let mut forced = vec![0u64; m];
    for (i, &mask) in coverage.iter().enumerate() {
        for u in 0..m {
            if mask & (1 << u) != 0 {
                base[u] += inst.setup(i);
            }
        }
        if mask.count_ones() == 1 {
            forced[mask.trailing_zeros() as usize] += inst.class_proc(i);
        }
    }
    for (i, &mask) in coverage.iter().enumerate() {
        if mask == 0 {
            continue;
        }
        // Machines of class i, and the other classes sharing each of them.
        let machines: Vec<usize> = (0..m).filter(|&u| mask & (1 << u) != 0).collect();
        let others: Vec<Vec<usize>> = machines
            .iter()
            .map(|&u| {
                (0..inst.num_classes())
                    .filter(|&k| k != i && coverage[k] & (1 << u) != 0)
                    .collect()
            })
            .collect();
        let patterns: usize = others.iter().map(|o| 1usize << o.len()).product();
        for &job in inst.class_jobs(i) {
            let tj = Rational::from(inst.job(job).time);
            let caps: Vec<Rational> = machines
                .iter()
                .map(|&u| {
                    let own = if mask.count_ones() == 1 {
                        inst.class_proc(i)
                    } else {
                        0
                    };
                    t - Rational::from(base[u] + forced[u] - own)
                })
                .collect();
            if patterns > PATTERN_CAP {
                // Too many layouts to enumerate: fall back to the pure
                // capacity check (the jobcap bound already enforces it).
                continue;
            }
            let mut ok = false;
            for pat in 0..patterns {
                budget.tick();
                // Decode the pattern into per-machine extents.
                let mut extents: Vec<(Rational, Rational)> = Vec::with_capacity(machines.len());
                let mut rest = pat;
                for (mi, o) in others.iter().enumerate() {
                    let choice = rest & ((1 << o.len()) - 1);
                    rest >>= o.len();
                    let u = machines[mi];
                    let mut before = Rational::from(inst.setup(i));
                    let mut after = Rational::ZERO;
                    for (ki, &k) in o.iter().enumerate() {
                        let block = Rational::from(
                            inst.setup(k)
                                + if coverage[k].count_ones() == 1 {
                                    inst.class_proc(k)
                                } else {
                                    0
                                },
                        );
                        if choice & (1 << ki) != 0 {
                            before += block;
                        } else {
                            after += block;
                        }
                    }
                    let _ = u;
                    extents.push((before, t - after));
                }
                if max_union(&extents, &caps) >= tj {
                    ok = true;
                    break;
                }
            }
            if !ok {
                return false;
            }
        }
    }
    true
}

/// Maximum total measure one job can reach across machine windows: window
/// `u` is any subset of `extents[u]` with measure at most `caps[u]`, and
/// the job uses the union. Solved as a tiny max-flow machines → elementary
/// segments.
fn max_union(extents: &[(Rational, Rational)], caps: &[Rational]) -> Rational {
    let mut endpoints: Vec<Rational> = extents
        .iter()
        .filter(|(a, b)| b > a)
        .flat_map(|&(a, b)| [a, b])
        .collect();
    endpoints.sort();
    endpoints.dedup();
    if endpoints.len() < 2 {
        return Rational::ZERO;
    }
    let segments: Vec<(Rational, Rational)> = endpoints
        .windows(2)
        .map(|e| (e[0], e[1]))
        .filter(|(a, b)| b > a)
        .collect();
    let nm = extents.len();
    let ns = segments.len();
    let (source, sink) = (nm + ns, nm + ns + 1);
    let mut f = Flow::new(nm + ns + 2);
    for (u, &(a, b)) in extents.iter().enumerate() {
        if b <= a || !caps[u].is_positive() {
            continue;
        }
        f.add_edge(source, u, caps[u]);
        for (s, &(sa, sb)) in segments.iter().enumerate() {
            if a <= sa && sb <= b {
                f.add_edge(u, nm + s, sb - sa);
            }
        }
    }
    for (s, &(sa, sb)) in segments.iter().enumerate() {
        f.add_edge(nm + s, sink, sb - sa);
    }
    f.max_flow(source, sink)
}

/// Minimal `t` on the `1/lcm` grid in `[lo, hi]` passing
/// [`pattern_feasible`], or `hi` if none below does (the caller's incumbent
/// makes larger values irrelevant). The predicate is monotone in `t`, so
/// binary search on the grid is exact.
fn pattern_threshold(
    inst: &Instance,
    coverage: &[u32],
    lo: Rational,
    hi: Rational,
    budget: &mut NodeBudget<'_>,
) -> Rational {
    if pattern_feasible(inst, coverage, lo, budget) {
        return lo;
    }
    let d = grid_denominator(inst.machines());
    let mut a = (lo * Rational::from(d)).floor(); // infeasible side
    let mut b = (hi * Rational::from(d)).ceil(); // feasible side (or cap)
    while b - a > 1 {
        let mid = (a + b) / 2;
        if pattern_feasible(inst, coverage, Rational::new(mid, d as i128), budget) {
            b = mid;
        } else {
            a = mid;
        }
    }
    Rational::new(b, d as i128).min(hi).max(lo)
}

/// `min_U max(gale(U), jobcap(U))` over complete coverages, by the same
/// depth-first enumeration as the splittable search (the partial Gale bound
/// under-estimates both terms, so pruning against the incumbent is sound).
fn coverage_lb(inst: &Instance, budget: &mut NodeBudget<'_>) -> Rational {
    struct Search<'a> {
        inst: &'a Instance,
        active: Vec<usize>,
        best: Rational,
    }
    impl Search<'_> {
        fn dfs(&mut self, coverage: &mut Vec<u32>, depth: usize, budget: &mut NodeBudget<'_>) {
            if !budget.tick() {
                return;
            }
            if depth == self.active.len() {
                let v = bounds::coverage_gale_bound(self.inst, coverage)
                    .max(jobcap(self.inst, coverage));
                if v >= self.best {
                    return;
                }
                // Simple schedules (one run per machine and class) must also
                // pass the position-aware pattern bound; schedules that
                // repeat a class on a machine pay at least one extra setup.
                let m = Rational::from(self.inst.machines() as u64);
                let base_sum: u64 = coverage
                    .iter()
                    .enumerate()
                    .map(|(i, &mask)| self.inst.setup(i) * u64::from(mask.count_ones()))
                    .sum();
                let min_setup = (0..self.inst.num_classes())
                    .map(|i| self.inst.setup(i))
                    .min()
                    .unwrap_or(0);
                let avg_extra = Rational::from(base_sum + self.inst.total_proc() + min_setup) / m;
                let tau = pattern_threshold(self.inst, coverage, v, self.best, budget);
                let leaf = tau.min(v.max(avg_extra));
                if leaf < self.best {
                    self.best = leaf;
                }
                return;
            }
            let class = self.active[depth];
            for mask in 1u32..(1 << self.inst.machines()) {
                coverage[class] = mask;
                if splittable::partial_bound(self.inst, coverage, &self.active, depth + 1)
                    < self.best
                {
                    self.dfs(coverage, depth + 1, budget);
                }
                if budget.exhausted() {
                    break;
                }
            }
            coverage[class] = 0;
        }
    }
    let active = splittable::active_classes(inst);
    if active.is_empty() {
        return Rational::ZERO;
    }
    let greedy = splittable::greedy_coverage(inst, &active);
    let mut search = Search {
        inst,
        best: bounds::coverage_gale_bound(inst, &greedy).max(jobcap(inst, &greedy)),
        active,
    };
    let mut coverage = vec![0u32; inst.num_classes()];
    search.dfs(&mut coverage, 0, budget);
    search.best
}

pub(crate) fn solve(inst: &Instance, budget: &mut NodeBudget<'_>) -> ExactSolve {
    let lower = coverage_lb(inst, budget).max(bounds::setup_job_bound(inst));
    let nonp = nonpreemptive::solve(inst, budget);
    let mut upper = nonp.upper;
    let mut schedule = nonp.schedule;
    debug_assert!(lower <= upper, "sandwich inverted: {lower} > {upper}");
    if lower >= upper {
        return ExactSolve {
            lower: upper,
            upper,
            nodes: budget.used(),
            status: ExactStatus::Closed,
            schedule,
        };
    }
    if !budget.exhausted() {
        if let Some(s) = realize_at(inst, lower, budget) {
            debug_assert_eq!(s.makespan(), lower);
            return ExactSolve {
                lower,
                upper: lower,
                nodes: budget.used(),
                status: ExactStatus::Closed,
                schedule: s,
            };
        }
    }
    // Tighten the gap from above: the first grid candidate that realizes
    // becomes the upper bound (and the reported schedule).
    if !budget.exhausted() {
        let d = grid_denominator(inst.machines());
        let mut k = (lower * Rational::from(d)).floor() + 1;
        while Rational::new(k, d as i128) < upper && !budget.exhausted() {
            let t = Rational::new(k, d as i128);
            if let Some(s) = realize_at(inst, t, budget) {
                upper = t;
                schedule = s;
                break;
            }
            k += 1;
        }
    }
    ExactSolve {
        lower,
        upper,
        nodes: budget.used(),
        status: if budget.exhausted() {
            ExactStatus::Budget
        } else {
            ExactStatus::Gap
        },
        schedule,
    }
}

/// Tries to build a feasible preemptive schedule of makespan exactly `t`.
fn realize_at(inst: &Instance, t: Rational, budget: &mut NodeBudget<'_>) -> Option<Schedule> {
    for coverage in splittable::coverages_within(inst, t, budget, COVERAGE_CAP) {
        let Some(x) = splittable::transportation(inst, &coverage, t, budget) else {
            continue;
        };
        // Runs per machine: (class, piece length), dropping empty runs.
        let mut runs: Vec<Vec<(usize, Rational)>> = vec![Vec::new(); inst.machines()];
        for (i, row) in x.iter().enumerate() {
            for (u, &amount) in row.iter().enumerate() {
                if amount.is_positive() {
                    runs[u].push((i, amount));
                }
            }
        }
        let mut orders_tried = 0usize;
        let mut stack: Vec<Vec<(usize, Rational)>> = Vec::new();
        if let Some(s) = try_orders(inst, t, &runs, 0, &mut stack, &mut orders_tried, budget) {
            return Some(s);
        }
        if budget.exhausted() {
            return None;
        }
    }
    None
}

/// Depth-first product over per-machine run permutations; at each complete
/// choice, attempts the per-class flow assignment.
fn try_orders(
    inst: &Instance,
    t: Rational,
    runs: &[Vec<(usize, Rational)>],
    machine: usize,
    chosen: &mut Vec<Vec<(usize, Rational)>>,
    tried: &mut usize,
    budget: &mut NodeBudget<'_>,
) -> Option<Schedule> {
    if machine == runs.len() {
        *tried += 1;
        return assign_pieces(inst, t, chosen, budget);
    }
    let mut perm = runs[machine].clone();
    let k = perm.len();
    // Heap's-algorithm-style recursive permutations, deterministic order.
    fn permute(
        inst: &Instance,
        t: Rational,
        runs: &[Vec<(usize, Rational)>],
        machine: usize,
        perm: &mut Vec<(usize, Rational)>,
        from: usize,
        chosen: &mut Vec<Vec<(usize, Rational)>>,
        tried: &mut usize,
        budget: &mut NodeBudget<'_>,
    ) -> Option<Schedule> {
        if *tried >= ORDER_CAP || budget.exhausted() {
            return None;
        }
        if from == perm.len() {
            chosen.push(perm.clone());
            let r = try_orders(inst, t, runs, machine + 1, chosen, tried, budget);
            chosen.pop();
            return r;
        }
        for i in from..perm.len() {
            perm.swap(from, i);
            if let Some(s) = permute(
                inst,
                t,
                runs,
                machine,
                perm,
                from + 1,
                chosen,
                tried,
                budget,
            ) {
                return Some(s);
            }
            perm.swap(from, i);
        }
        None
    }
    let _ = k;
    permute(inst, t, runs, machine, &mut perm, 0, chosen, tried, budget)
}

/// One class's processing window on one machine: piece region of its run.
#[derive(Debug, Clone, Copy)]
struct Window {
    machine: usize,
    start: Rational,
    end: Rational,
}

/// Given a complete run layout (per machine, ordered runs of `(class,
/// piece-length)`), assigns every job's time to the windows with no job
/// self-overlapping, or reports infeasibility of this layout.
fn assign_pieces(
    inst: &Instance,
    t: Rational,
    layout: &[Vec<(usize, Rational)>],
    budget: &mut NodeBudget<'_>,
) -> Option<Schedule> {
    // Compute each class's windows from the run layout.
    let mut windows: Vec<Vec<Window>> = vec![Vec::new(); inst.num_classes()];
    for (u, machine_runs) in layout.iter().enumerate() {
        let mut cursor = Rational::ZERO;
        for &(class, len) in machine_runs {
            let start = cursor + Rational::from(inst.setup(class));
            let end = start + len;
            if end > t {
                return None; // layout overruns the target makespan
            }
            windows[class].push(Window {
                machine: u,
                start,
                end,
            });
            cursor = end;
        }
    }
    let mut out = Schedule::new(inst.machines());
    // Setups first, so ties at equal start sort setup-before-piece.
    for (u, machine_runs) in layout.iter().enumerate() {
        let mut cursor = Rational::ZERO;
        for &(class, len) in machine_runs {
            let s = Rational::from(inst.setup(class));
            out.push_setup(u, cursor, s, class);
            cursor += s + len;
        }
    }
    for class in 0..inst.num_classes() {
        if windows[class].is_empty() {
            if inst.class_proc(class) > 0 {
                return None;
            }
            continue;
        }
        if !assign_class(inst, class, &windows[class], &mut out, budget) {
            return None;
        }
    }
    Some(out)
}

/// Flow-assigns one class's jobs into its windows and emits the placements.
fn assign_class(
    inst: &Instance,
    class: usize,
    windows: &[Window],
    out: &mut Schedule,
    budget: &mut NodeBudget<'_>,
) -> bool {
    budget.tick();
    let jobs = inst.class_jobs(class);
    // Elementary slots from the window endpoints.
    let mut endpoints: Vec<Rational> = windows.iter().flat_map(|w| [w.start, w.end]).collect();
    endpoints.sort();
    endpoints.dedup();
    let slots: Vec<(Rational, Rational)> = endpoints
        .windows(2)
        .map(|e| (e[0], e[1]))
        .filter(|(a, b)| b > a)
        .collect();
    let covering: Vec<Vec<usize>> = slots
        .iter()
        .map(|&(a, b)| {
            windows
                .iter()
                .enumerate()
                .filter(|(_, w)| w.start <= a && b <= w.end)
                .map(|(wi, _)| wi)
                .collect()
        })
        .collect();
    // Nodes: source, jobs, (job, slot), (window, slot), sink.
    let nj = jobs.len();
    let ns = slots.len();
    let node_job = |j: usize| 1 + j;
    let node_js = |j: usize, s: usize| 1 + nj + j * ns + s;
    let node_ws = |w: usize, s: usize| 1 + nj + nj * ns + w * ns + s;
    let sink = 1 + nj + nj * ns + windows.len() * ns;
    let mut f = Flow::new(sink + 1);
    let mut demand = Rational::ZERO;
    for (ji, &job) in jobs.iter().enumerate() {
        let tj = Rational::from(inst.job(job).time);
        demand += tj;
        f.add_edge(0, node_job(ji), tj);
    }
    let mut piece_edges: Vec<(usize, usize, usize, usize)> = Vec::new(); // (edge, job-idx, window, slot)
    for (si, &(a, b)) in slots.iter().enumerate() {
        let len = b - a;
        for ji in 0..nj {
            if covering[si].is_empty() {
                continue;
            }
            f.add_edge(node_job(ji), node_js(ji, si), len);
            for &wi in &covering[si] {
                let id = f.add_edge(node_js(ji, si), node_ws(wi, si), len);
                piece_edges.push((id, ji, wi, si));
            }
        }
        for &wi in &covering[si] {
            f.add_edge(node_ws(wi, si), sink, len);
        }
    }
    if f.max_flow(0, sink) != demand {
        return false;
    }
    // Per-slot piece matrices, peeled into matchings.
    for (si, &(a, b)) in slots.iter().enumerate() {
        let mut amounts: Vec<(usize, usize, Rational)> = piece_edges
            .iter()
            .filter(|&&(_, _, _, s)| s == si)
            .map(|&(id, ji, wi, _)| (ji, wi, f.flow(id)))
            .filter(|(_, _, v)| v.is_positive())
            .collect();
        if amounts.is_empty() {
            continue;
        }
        let len = b - a;
        if !peel_slot(&mut amounts, len, a, |ji, wi, start, d| {
            out.push_piece(windows[wi].machine, start, d, jobs[ji], class);
        }) {
            return false;
        }
    }
    true
}

/// Peels a per-slot piece matrix (rows = jobs, cols = windows ≙ machines)
/// into matchings: every peel schedules each matched (job, machine) pair
/// for `δ` at the same time offset, so no job parallels itself and no
/// machine double-books. Row and column sums are `≤ slot length` by the
/// flow's capacities; the classic tight-vertex matching argument
/// guarantees the peel always completes.
fn peel_slot(
    amounts: &mut Vec<(usize, usize, Rational)>,
    mut remaining: Rational,
    mut cursor: Rational,
    mut emit: impl FnMut(usize, usize, Rational, Rational),
) -> bool {
    while !amounts.is_empty() {
        let rows: Vec<usize> = {
            let mut r: Vec<usize> = amounts.iter().map(|&(j, _, _)| j).collect();
            r.sort_unstable();
            r.dedup();
            r
        };
        let cols: Vec<usize> = {
            let mut c: Vec<usize> = amounts.iter().map(|&(_, w, _)| w).collect();
            c.sort_unstable();
            c.dedup();
            c
        };
        let row_sum = |j: usize| -> Rational {
            amounts
                .iter()
                .filter(|&&(jj, _, _)| jj == j)
                .map(|&(_, _, v)| v)
                .fold(Rational::ZERO, |x, y| x + y)
        };
        let col_sum = |w: usize| -> Rational {
            amounts
                .iter()
                .filter(|&&(_, ww, _)| ww == w)
                .map(|&(_, _, v)| v)
                .fold(Rational::ZERO, |x, y| x + y)
        };
        let Some(matching) = tight_matching(
            amounts,
            &rows,
            &cols,
            &rows
                .iter()
                .map(|&j| row_sum(j) == remaining)
                .collect::<Vec<_>>(),
            &cols
                .iter()
                .map(|&w| col_sum(w) == remaining)
                .collect::<Vec<_>>(),
        ) else {
            return false;
        };
        // δ: stay within matched amounts and keep every unmatched line's
        // sum ≤ the shrunk slot.
        let mut delta = remaining;
        for &(j, w) in &matching {
            let v = amounts
                .iter()
                .find(|&&(jj, ww, _)| jj == j && ww == w)
                .map(|&(_, _, v)| v)
                .expect("matched entry exists");
            delta = delta.min(v);
        }
        for &j in &rows {
            if !matching.iter().any(|&(jj, _)| jj == j) {
                delta = delta.min(remaining - row_sum(j));
            }
        }
        for &w in &cols {
            if !matching.iter().any(|&(_, ww)| ww == w) {
                delta = delta.min(remaining - col_sum(w));
            }
        }
        if !delta.is_positive() {
            return false; // cannot happen when the matching covers tight lines
        }
        for &(j, w) in &matching {
            emit(j, w, cursor, delta);
            let entry = amounts
                .iter_mut()
                .find(|e| e.0 == j && e.1 == w)
                .expect("matched entry exists");
            entry.2 -= delta;
        }
        amounts.retain(|e| e.2.is_positive());
        cursor += delta;
        remaining -= delta;
    }
    true
}

/// A matching over the positive entries covering every tight row and
/// column. Entries are few (rows ≤ jobs, cols ≤ machines), so a bounded
/// exhaustive search over column assignments is simplest and exact.
fn tight_matching(
    amounts: &[(usize, usize, Rational)],
    rows: &[usize],
    cols: &[usize],
    row_tight: &[bool],
    col_tight: &[bool],
) -> Option<Vec<(usize, usize)>> {
    // assignment[ci] = row index into `rows` or usize::MAX for unmatched.
    fn search(
        amounts: &[(usize, usize, Rational)],
        rows: &[usize],
        cols: &[usize],
        row_tight: &[bool],
        col_tight: &[bool],
        ci: usize,
        used: &mut Vec<bool>,
        picked: &mut Vec<(usize, usize)>,
    ) -> bool {
        if ci == cols.len() {
            // Every tight row must be covered.
            return row_tight
                .iter()
                .enumerate()
                .all(|(ri, &tight)| !tight || picked.iter().any(|&(j, _)| j == rows[ri]));
        }
        let w = cols[ci];
        for (ri, &j) in rows.iter().enumerate() {
            if used[ri] {
                continue;
            }
            if !amounts.iter().any(|&(jj, ww, _)| jj == j && ww == w) {
                continue;
            }
            used[ri] = true;
            picked.push((j, w));
            if search(
                amounts,
                rows,
                cols,
                row_tight,
                col_tight,
                ci + 1,
                used,
                picked,
            ) {
                return true;
            }
            picked.pop();
            used[ri] = false;
        }
        // Leaving this column unmatched is only allowed when it is not
        // tight.
        !col_tight[ci]
            && search(
                amounts,
                rows,
                cols,
                row_tight,
                col_tight,
                ci + 1,
                used,
                picked,
            )
    }
    let mut used = vec![false; rows.len()];
    let mut picked = Vec::new();
    if search(
        amounts,
        rows,
        cols,
        row_tight,
        col_tight,
        0,
        &mut used,
        &mut picked,
    ) {
        Some(picked)
    } else {
        None
    }
}
