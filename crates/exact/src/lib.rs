//! Exact certification backend: branch-and-bound OPT oracles for tiny
//! instances of every problem the workspace solves.
//!
//! The golden repro pipeline measures every algorithm against *lower
//! bounds*; this crate closes the gap to honest ratios by computing the
//! exact optimum — in exact rationals, with a proof — for
//!
//! * the three batch-setup variants ([`solve_bss`]): splittable optima via
//!   coverage enumeration over the Gale–Hoffman transportation bound
//!   ([`bounds::coverage_gale_bound`]), non-preemptive optima via a
//!   dominance-pruned assignment search, preemptive optima via the
//!   `OPT_split ≤ OPT_pmtn ≤ OPT_nonp` sandwich plus an exact wrap-around
//!   realization of the lower end;
//! * sequence-dependent setups ([`solve_seqdep`]): branch-and-bound over
//!   per-machine class orders with big-M-free sequencing bounds.
//!
//! Every search carries an *anytime incumbent*: when the configurable node
//! budget ([`ExactConfig::max_nodes`]) runs out, the result degrades to a
//! certified `lower ≤ OPT ≤ upper` sandwich ([`ExactStatus::Budget`])
//! instead of silently claiming optimality — [`ExactSolve::guarantee`] is
//! `1` exactly when the search closed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;

use bss_budget::SolveBudget;
use bss_instance::{Instance, Variant};
use bss_rational::Rational;
use bss_schedule::Schedule;
use bss_seqdep::SeqDepInstance;

pub mod bounds;
mod flow;
mod nonpreemptive;
mod preemptive;
mod seqdep;
mod splittable;

/// Size limits and node budget for the exact search.
#[derive(Debug, Clone)]
pub struct ExactConfig {
    /// Search-node budget across the whole solve (branch nodes, flow runs
    /// and realization attempts all count). When exhausted the oracle
    /// returns its anytime incumbent with [`ExactStatus::Budget`].
    pub max_nodes: u64,
    /// Hard cap on the job count (the search is exponential; ~20 is the
    /// practical ceiling).
    pub max_jobs: usize,
    /// Hard cap on the machine count (coverage enumeration is `2^m` per
    /// class).
    pub max_machines: usize,
    /// Hard cap on the class count (bounds both coverage enumeration and
    /// the seqdep order search).
    pub max_classes: usize,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_nodes: 2_000_000,
            max_jobs: 20,
            max_machines: 5,
            max_classes: 10,
        }
    }
}

/// Why the oracle refused an instance (errors, not panics, per the
/// workspace error contract).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactError {
    /// More jobs than [`ExactConfig::max_jobs`].
    TooManyJobs {
        /// The instance's job count.
        actual: usize,
        /// The configured limit.
        limit: usize,
    },
    /// More machines than [`ExactConfig::max_machines`].
    TooManyMachines {
        /// The instance's machine count.
        actual: usize,
        /// The configured limit.
        limit: usize,
    },
    /// More classes than [`ExactConfig::max_classes`].
    TooManyClasses {
        /// The instance's class count.
        actual: usize,
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for ExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactError::TooManyJobs { actual, limit } => {
                write!(
                    f,
                    "instance has {actual} jobs, exact oracle caps at {limit}"
                )
            }
            ExactError::TooManyMachines { actual, limit } => write!(
                f,
                "instance has {actual} machines, exact oracle caps at {limit}"
            ),
            ExactError::TooManyClasses { actual, limit } => write!(
                f,
                "instance has {actual} classes, exact oracle caps at {limit}"
            ),
        }
    }
}

impl std::error::Error for ExactError {}

/// How the search ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExactStatus {
    /// `lower == upper`: the schedule is provably optimal.
    Closed,
    /// The node budget ran out; `lower ≤ OPT ≤ upper` is certified but the
    /// gap is open.
    Budget,
    /// The search space was exhausted without matching the lower bound (the
    /// preemptive realization family did not reach it); `lower ≤ OPT ≤
    /// upper` is certified but the exact optimum is undetermined.
    Gap,
}

/// The oracle's result: a certified sandwich `lower ≤ OPT ≤ upper` with a
/// feasible schedule achieving `upper`.
#[derive(Debug, Clone)]
pub struct ExactSolve {
    /// Certified lower bound on the optimum (equals `upper` iff
    /// [`ExactStatus::Closed`]).
    pub lower: Rational,
    /// Makespan of [`ExactSolve::schedule`], the best feasible solution
    /// found.
    pub upper: Rational,
    /// Search nodes expended (branch nodes + flow evaluations).
    pub nodes: u64,
    /// Whether the search closed, ran out of budget, or left a gap.
    pub status: ExactStatus,
    /// The incumbent schedule (optimal iff [`ExactStatus::Closed`]).
    pub schedule: Schedule,
}

impl ExactSolve {
    /// The exact optimum, when the search closed.
    #[must_use]
    pub fn opt(&self) -> Option<Rational> {
        (self.status == ExactStatus::Closed).then_some(self.upper)
    }

    /// The proven approximation guarantee of [`ExactSolve::schedule`]:
    /// `upper / lower`, exactly `1` when closed. A zero lower bound (an
    /// all-zero-cost instance) degrades to treating the bound as `1`.
    #[must_use]
    pub fn guarantee(&self) -> Rational {
        if self.upper == self.lower {
            return Rational::ONE;
        }
        if self.lower.is_positive() {
            (self.upper / self.lower).max(Rational::ONE)
        } else {
            self.upper.max(Rational::ONE)
        }
    }

    /// The incumbent schedule.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }
}

/// The shared node budget threaded through every search layer.
///
/// Optionally mirrors a caller's [`SolveBudget`] (the anytime portfolio
/// passes its own, so both arms draw from one budget with no
/// double-accounting): every [`NodeBudget::POLL_STRIDE`] nodes the shared
/// budget is polled, and an interrupt — deadline, cancellation, work
/// exhausted upstream — reads as budget exhaustion here, winding the search
/// down to its certified anytime incumbent exactly as if `max_nodes` ran
/// out.
#[derive(Debug)]
pub(crate) struct NodeBudget<'a> {
    used: u64,
    max: u64,
    shared: Option<&'a SolveBudget>,
    interrupted: bool,
}

impl<'a> NodeBudget<'a> {
    /// Poll the shared budget once every this many nodes: expanding a node
    /// is orders of magnitude cheaper than a dual probe, so reading the
    /// clock per node would dominate the search.
    const POLL_STRIDE: u64 = 64;

    /// A standalone node budget (tests drive the variant modules directly;
    /// the public entry points always carry a shared [`SolveBudget`]).
    #[cfg(test)]
    pub(crate) fn new(max: u64) -> Self {
        NodeBudget {
            used: 0,
            max,
            shared: None,
            interrupted: false,
        }
    }

    pub(crate) fn with_shared(max: u64, shared: &'a SolveBudget) -> Self {
        NodeBudget {
            used: 0,
            max,
            shared: Some(shared),
            interrupted: false,
        }
    }

    /// Spends one node; `false` once the budget is exhausted (the caller
    /// must wind down to its incumbent).
    pub(crate) fn tick(&mut self) -> bool {
        self.used = self.used.saturating_add(1);
        if let Some(shared) = self.shared {
            if !self.interrupted
                && self.used.is_multiple_of(Self::POLL_STRIDE)
                && shared.poll().is_err()
            {
                self.interrupted = true;
            }
        }
        !self.exhausted()
    }

    pub(crate) fn exhausted(&self) -> bool {
        self.interrupted || self.used > self.max
    }

    pub(crate) fn used(&self) -> u64 {
        self.used
    }
}

fn check_limits(inst: &Instance, cfg: &ExactConfig) -> Result<(), ExactError> {
    if inst.num_jobs() > cfg.max_jobs {
        return Err(ExactError::TooManyJobs {
            actual: inst.num_jobs(),
            limit: cfg.max_jobs,
        });
    }
    if inst.machines() > cfg.max_machines {
        return Err(ExactError::TooManyMachines {
            actual: inst.machines(),
            limit: cfg.max_machines,
        });
    }
    if inst.num_classes() > cfg.max_classes {
        return Err(ExactError::TooManyClasses {
            actual: inst.num_classes(),
            limit: cfg.max_classes,
        });
    }
    Ok(())
}

/// Solves a batch-setup instance exactly for the given variant.
///
/// # Errors
/// Returns an [`ExactError`] when the instance exceeds the configured size
/// limits (the search would be astronomically large); never panics on any
/// instance the workspace's builders accept.
pub fn solve_bss(
    inst: &Instance,
    variant: Variant,
    cfg: &ExactConfig,
) -> Result<ExactSolve, ExactError> {
    solve_bss_budgeted(inst, variant, cfg, &SolveBudget::unlimited())
}

/// [`solve_bss`] drawing from a caller's shared [`SolveBudget`] alongside
/// the node cap: when the shared budget trips (deadline, cancellation, work
/// exhausted by another arm), the search winds down to its certified
/// anytime incumbent and reports [`ExactStatus::Budget`]. Bit-identical to
/// [`solve_bss`] under [`SolveBudget::unlimited`].
///
/// # Errors
/// Returns an [`ExactError`] when the instance exceeds the configured size
/// limits; never panics on any instance the workspace's builders accept.
pub fn solve_bss_budgeted(
    inst: &Instance,
    variant: Variant,
    cfg: &ExactConfig,
    shared: &SolveBudget,
) -> Result<ExactSolve, ExactError> {
    check_limits(inst, cfg)?;
    let mut budget = NodeBudget::with_shared(cfg.max_nodes, shared);
    Ok(match variant {
        Variant::Splittable => splittable::solve(inst, &mut budget),
        Variant::Preemptive => preemptive::solve(inst, &mut budget),
        Variant::NonPreemptive => nonpreemptive::solve(inst, &mut budget),
    })
}

/// Solves a sequence-dependent instance exactly (branch-and-bound over
/// per-machine class orders).
///
/// # Errors
/// Returns an [`ExactError`] when the class or machine count exceeds the
/// configured limits; never panics on any instance
/// [`SeqDepInstance::new`] accepts.
pub fn solve_seqdep(sd: &SeqDepInstance, cfg: &ExactConfig) -> Result<ExactSolve, ExactError> {
    solve_seqdep_budgeted(sd, cfg, &SolveBudget::unlimited())
}

/// [`solve_seqdep`] drawing from a caller's shared [`SolveBudget`] alongside
/// the node cap — same contract as [`solve_bss_budgeted`].
///
/// # Errors
/// Returns an [`ExactError`] when the class or machine count exceeds the
/// configured limits; never panics on any instance
/// [`SeqDepInstance::new`] accepts.
pub fn solve_seqdep_budgeted(
    sd: &SeqDepInstance,
    cfg: &ExactConfig,
    shared: &SolveBudget,
) -> Result<ExactSolve, ExactError> {
    if sd.num_classes() > cfg.max_classes {
        return Err(ExactError::TooManyClasses {
            actual: sd.num_classes(),
            limit: cfg.max_classes,
        });
    }
    if sd.machines() > cfg.max_machines {
        return Err(ExactError::TooManyMachines {
            actual: sd.machines(),
            limit: cfg.max_machines,
        });
    }
    let mut budget = NodeBudget::with_shared(cfg.max_nodes, shared);
    Ok(seqdep::solve(sd, &mut budget))
}
