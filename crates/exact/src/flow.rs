//! Exact-rational maximum flow (Edmonds–Karp on adjacency lists).
//!
//! The oracles use flows twice: the transportation feasibility step of the
//! splittable coverage bound (Gale–Hoffman), and the per-class piece
//! assignment of the preemptive realization. Capacities are [`Rational`]s;
//! Edmonds–Karp augments along *shortest* residual paths, so the number of
//! augmentations is `O(V·E)` regardless of capacity values — termination
//! does not depend on integrality.

use bss_rational::Rational;

/// An edge of the flow network (the reverse edge is stored separately and
/// found via `id ^ 1`).
#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: Rational,
    flow: Rational,
}

/// A flow network over `n` nodes with rational capacities.
#[derive(Debug, Clone)]
pub(crate) struct Flow {
    adj: Vec<Vec<usize>>,
    edges: Vec<Edge>,
}

impl Flow {
    /// An empty network on `n` nodes.
    pub(crate) fn new(n: usize) -> Self {
        Flow {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Adds a directed edge `u → v` of capacity `cap`; returns its id (the
    /// reverse edge is `id + 1`).
    pub(crate) fn add_edge(&mut self, u: usize, v: usize, cap: Rational) -> usize {
        let id = self.edges.len();
        self.edges.push(Edge {
            to: v,
            cap,
            flow: Rational::ZERO,
        });
        self.edges.push(Edge {
            to: u,
            cap: Rational::ZERO,
            flow: Rational::ZERO,
        });
        self.adj[u].push(id);
        self.adj[v].push(id + 1);
        id
    }

    /// The flow currently on edge `id` (forward direction).
    pub(crate) fn flow(&self, id: usize) -> Rational {
        self.edges[id].flow
    }

    fn residual(&self, id: usize) -> Rational {
        self.edges[id].cap - self.edges[id].flow
    }

    /// Runs Edmonds–Karp from `s` to `t`; returns the max-flow value.
    pub(crate) fn max_flow(&mut self, s: usize, t: usize) -> Rational {
        let mut total = Rational::ZERO;
        let n = self.adj.len();
        let mut pred: Vec<Option<usize>> = vec![None; n];
        loop {
            // BFS for a shortest augmenting path.
            pred.iter_mut().for_each(|p| *p = None);
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s);
            let mut seen = vec![false; n];
            seen[s] = true;
            while let Some(u) = queue.pop_front() {
                if u == t {
                    break;
                }
                for &id in &self.adj[u] {
                    let v = self.edges[id].to;
                    if !seen[v] && self.residual(id).is_positive() {
                        seen[v] = true;
                        pred[v] = Some(id);
                        queue.push_back(v);
                    }
                }
            }
            if !seen[t] {
                return total;
            }
            // Bottleneck along the path, then augment.
            let mut bottleneck: Option<Rational> = None;
            let mut v = t;
            while v != s {
                let id = pred[v].expect("path edge");
                let r = self.residual(id);
                bottleneck = Some(match bottleneck {
                    Some(b) => b.min(r),
                    None => r,
                });
                v = self.edges[id ^ 1].to;
            }
            let aug = bottleneck.expect("t != s");
            let mut v = t;
            while v != s {
                let id = pred[v].expect("path edge");
                self.edges[id].flow += aug;
                self.edges[id ^ 1].flow = self.edges[id ^ 1].flow - aug;
                v = self.edges[id ^ 1].to;
            }
            total += aug;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_diamond() {
        let mut f = Flow::new(4);
        f.add_edge(0, 1, Rational::from(3u64));
        f.add_edge(0, 2, Rational::from(2u64));
        f.add_edge(1, 2, Rational::from(5u64));
        f.add_edge(1, 3, Rational::from(2u64));
        f.add_edge(2, 3, Rational::from(3u64));
        assert_eq!(f.max_flow(0, 3), Rational::from(5u64));
    }

    #[test]
    fn rational_capacities_terminate_and_sum() {
        let mut f = Flow::new(4);
        f.add_edge(0, 1, Rational::new(7, 3));
        f.add_edge(0, 2, Rational::new(1, 2));
        f.add_edge(1, 3, Rational::new(3, 2));
        f.add_edge(2, 3, Rational::new(5, 3));
        f.add_edge(1, 2, Rational::new(1, 6));
        assert_eq!(
            f.max_flow(0, 3),
            Rational::new(3, 2) + Rational::new(1, 2) + Rational::new(1, 6)
        );
    }
}
