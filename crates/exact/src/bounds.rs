//! The exact-rational lower bounds driving the branch-and-bound oracles.
//!
//! These are the LP-relaxation-style bounds of the MILP formulations the
//! literature uses for setup scheduling (per-machine load plus setup
//! relaxation), specialized to the batch-setup model and kept in exact
//! rationals so the oracle's `lower`/`upper` sandwich never suffers
//! rounding. Each function is `pub` and documented so the unit suite can
//! pin it against hand-computed values on 3–5 job instances.

use bss_instance::Instance;
use bss_rational::Rational;

/// The average-load bound `(Σ_i s_i + Σ_j t_j) / m`: every class pays its
/// setup at least once somewhere, so total work over `m` machines is at
/// least the one-setup load.
#[must_use]
pub fn average_load(inst: &Instance) -> Rational {
    Rational::from(inst.total_load_once()) / Rational::from(inst.machines() as u64)
}

/// The setup-plus-job bound `max_j (s_{c(j)} + t_j)`: a job's pieces cannot
/// overlap themselves (preemptive and non-preemptive variants), and every
/// machine touching the job's class pays the setup first, so *some* machine
/// finishes no earlier than `s_{c(j)} + t_j`.
///
/// This is **not** a splittable bound — splittable jobs may run on several
/// machines in parallel.
#[must_use]
pub fn setup_job_bound(inst: &Instance) -> Rational {
    Rational::from(
        inst.jobs()
            .iter()
            .map(|j| inst.setup(j.class) + j.time)
            .max()
            .unwrap_or(0),
    )
}

/// The per-class splittable bound `max_i (s_i + P_i / m)`: class `i`'s work
/// `P_i` spreads over at most `m` machines, each of which pays `s_i` first.
#[must_use]
pub fn class_spread_bound(inst: &Instance) -> Rational {
    let m = Rational::from(inst.machines() as u64);
    (0..inst.num_classes())
        .map(|i| Rational::from(inst.setup(i)) + Rational::from(inst.class_proc(i)) / m)
        .fold(Rational::ZERO, Rational::max)
}

/// The Gale–Hoffman transportation bound for a fixed *coverage*.
///
/// `coverage[i]` is a bitmask of the machines that set up class `i` (classes
/// without work may have an empty mask). Writing `base_u = Σ_{i: u ∈ U_i}
/// s_i` for the committed setup load of machine `u`, a schedule with this
/// coverage finishing by `T` must satisfy, for every non-empty machine
/// subset `B`,
///
/// ```text
/// Σ_{u ∈ B} base_u  +  Σ_{i: U_i ⊆ B} P_i  ≤  |B| · T
/// ```
///
/// (classes entirely covered by `B` have nowhere else to run). The bound is
/// the max over `B` of the left side divided by `|B|`; by Gale–Hoffman it is
/// *exactly* the minimal feasible `T` of the splittable transportation
/// problem, so the splittable optimum is the minimum of this bound over all
/// coverages.
///
/// # Panics
/// Debug-panics if `coverage` does not have one mask per class; masks must
/// fit the machine count.
#[must_use]
pub fn coverage_gale_bound(inst: &Instance, coverage: &[u32]) -> Rational {
    debug_assert_eq!(coverage.len(), inst.num_classes());
    let m = inst.machines();
    let mut base = vec![0u64; m];
    for (i, &mask) in coverage.iter().enumerate() {
        debug_assert!(mask < (1u32 << m), "coverage mask beyond machine count");
        for (u, b) in base.iter_mut().enumerate() {
            if mask & (1 << u) != 0 {
                *b += inst.setup(i);
            }
        }
    }
    let mut best = Rational::ZERO;
    for sub in 1u32..(1 << m) {
        let mut num = 0u64;
        for (u, &b) in base.iter().enumerate() {
            if sub & (1 << u) != 0 {
                num += b;
            }
        }
        for (i, &mask) in coverage.iter().enumerate() {
            if mask != 0 && mask & !sub == 0 {
                num += inst.class_proc(i);
            }
        }
        let ratio = Rational::from(num) / Rational::from(sub.count_ones() as u64);
        best = best.max(ratio);
    }
    best
}

/// The instance-only splittable root bound
/// `max(average_load, class_spread_bound)` — a valid lower bound on the
/// splittable optimum before any coverage is fixed, used as the oracle's
/// `lower` when the node budget runs out at the root.
#[must_use]
pub fn splittable_root_bound(inst: &Instance) -> Rational {
    average_load(inst).max(class_spread_bound(inst))
}

/// The non-preemptive root bound `max(average_load, setup_job_bound)` (the
/// preemptive optimum shares it, by `OPT_pmtn ≤ OPT_nonp` on the upper side
/// and the same two relaxations on the lower side).
#[must_use]
pub fn nonpreemptive_root_bound(inst: &Instance) -> Rational {
    average_load(inst).max(setup_job_bound(inst))
}

#[cfg(test)]
mod tests {
    use bss_instance::InstanceBuilder;

    use super::*;

    /// `m = 2`; class A: setup 5, jobs [3, 7]; class B: setup 4, jobs [6].
    fn two_class_instance() -> Instance {
        let mut b = InstanceBuilder::new(2);
        b.add_batch(5, &[3, 7]);
        b.add_batch(4, &[6]);
        b.build().unwrap()
    }

    /// `m = 3`; class A: setup 2, jobs [9]; class B: setup 1, jobs [1, 1].
    fn three_machine_instance() -> Instance {
        let mut b = InstanceBuilder::new(3);
        b.add_batch(2, &[9]);
        b.add_batch(1, &[1, 1]);
        b.build().unwrap()
    }

    #[test]
    fn average_load_pins_to_hand_computed_rationals() {
        // (5 + 4 + 3 + 7 + 6) / 2.
        assert_eq!(average_load(&two_class_instance()), Rational::new(25, 2));
        // (2 + 1 + 9 + 1 + 1) / 3.
        assert_eq!(
            average_load(&three_machine_instance()),
            Rational::new(14, 3)
        );
    }

    #[test]
    fn setup_job_bound_pins_to_hand_computed_values() {
        // max(5+3, 5+7, 4+6).
        assert_eq!(
            setup_job_bound(&two_class_instance()),
            Rational::from(12u64)
        );
        // max(2+9, 1+1) — the lone heavy job dominates.
        assert_eq!(
            setup_job_bound(&three_machine_instance()),
            Rational::from(11u64)
        );
    }

    #[test]
    fn class_spread_bound_pins_to_hand_computed_rationals() {
        // max(5 + 10/2, 4 + 6/2) = max(10, 7).
        assert_eq!(
            class_spread_bound(&two_class_instance()),
            Rational::from(10u64)
        );
        // max(2 + 9/3, 1 + 2/3) = max(5, 5/3).
        assert_eq!(
            class_spread_bound(&three_machine_instance()),
            Rational::from(5u64)
        );
    }

    #[test]
    fn root_bounds_take_the_right_maximum() {
        // Splittable: average 25/2 beats the spread 10; non-preemptive:
        // average 25/2 beats the job bound 12.
        let inst = two_class_instance();
        assert_eq!(splittable_root_bound(&inst), Rational::new(25, 2));
        assert_eq!(nonpreemptive_root_bound(&inst), Rational::new(25, 2));
        // Three machines flip both winners: spread 5 > average 14/3, and
        // the heavy job 11 dominates the non-preemptive side.
        let inst = three_machine_instance();
        assert_eq!(splittable_root_bound(&inst), Rational::from(5u64));
        assert_eq!(nonpreemptive_root_bound(&inst), Rational::from(11u64));
    }

    #[test]
    fn coverage_gale_bound_pins_to_hand_computed_values() {
        // Class A (setup 5, P = 10) on both machines, class B (setup 4,
        // P = 6) on machine 0 only: base = [9, 5]; the binding subsets are
        // {0} with (9 + 6)/1 and {0,1} with (14 + 16)/2 — both 15.
        let inst = two_class_instance();
        assert_eq!(
            coverage_gale_bound(&inst, &[0b11, 0b01]),
            Rational::from(15u64)
        );
        // Everything on machine 0: the whole one-setup load serializes.
        assert_eq!(
            coverage_gale_bound(&inst, &[0b01, 0b01]),
            Rational::from(25u64)
        );
        // Split coverage A→{0}, B→{1}: base = [5, 4]; subsets {0}: 15,
        // {1}: 10, {0,1}: 25/2 — machine 0 binds.
        assert_eq!(
            coverage_gale_bound(&inst, &[0b01, 0b10]),
            Rational::from(15u64)
        );
    }

    /// Gale–Hoffman is exact per coverage, so minimizing it over all
    /// coverages must reproduce the splittable oracle's optimum.
    #[test]
    fn coverage_minimum_matches_the_splittable_oracle() {
        let inst = two_class_instance();
        let mut best: Option<Rational> = None;
        for a in 1u32..4 {
            for b in 1u32..4 {
                let bound = coverage_gale_bound(&inst, &[a, b]);
                best = Some(best.map_or(bound, |x: Rational| x.min(bound)));
            }
        }
        let ex = crate::solve_bss(
            &inst,
            bss_instance::Variant::Splittable,
            &crate::ExactConfig::default(),
        )
        .unwrap();
        assert_eq!(ex.status, crate::ExactStatus::Closed);
        assert_eq!(best.unwrap(), ex.upper);
    }
}
