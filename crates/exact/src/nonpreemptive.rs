//! Exact non-preemptive optima: dominance-pruned assignment search.
//!
//! Non-preemptively, each job runs whole on one machine, and WLOG a machine
//! groups its jobs class-contiguously with one setup per class it touches
//! (merging batches drops setups, reordering runs is free). A machine's
//! completion time is therefore determined by the *set* of jobs assigned to
//! it, so the search branches on job → machine assignments, longest job
//! first, with
//!
//! * the suffix average bound (remaining work spread perfectly),
//! * first-empty-machine symmetry breaking,
//! * dominance memoization on `(depth, sorted (load, class-mask) multiset)`
//!   — two prefixes reaching the same machine profile explore the same
//!   subtree, and the first visit had the weaker incumbent, so revisits are
//!   pruned exactly.

use std::collections::HashSet;

use bss_instance::Instance;
use bss_rational::Rational;
use bss_schedule::Schedule;

use crate::bounds;
use crate::{ExactSolve, ExactStatus, NodeBudget};

/// Past this many memo entries the table stops growing (still exact — only
/// the pruning weakens).
const MEMO_CAP: usize = 500_000;

struct Search<'a> {
    inst: &'a Instance,
    /// Job ids, longest first.
    order: Vec<usize>,
    /// `suffix[k]` = total processing time of `order[k..]`.
    suffix: Vec<u64>,
    loads: Vec<u64>,
    masks: Vec<u32>,
    assign: Vec<usize>,
    best: u64,
    best_assign: Vec<usize>,
    memo: HashSet<(usize, Vec<(u64, u32)>)>,
    root_lb: u64,
}

impl Search<'_> {
    fn machine_key(&self) -> Vec<(u64, u32)> {
        let mut key: Vec<(u64, u32)> = self
            .loads
            .iter()
            .copied()
            .zip(self.masks.iter().copied())
            .collect();
        key.sort_unstable();
        key
    }

    fn dfs(&mut self, depth: usize, budget: &mut NodeBudget<'_>) {
        if !budget.tick() || self.best == self.root_lb {
            return;
        }
        if depth == self.order.len() {
            let makespan = self.loads.iter().copied().max().unwrap_or(0);
            if makespan < self.best {
                self.best = makespan;
                self.best_assign = self.assign.clone();
            }
            return;
        }
        // Suffix average bound: even perfectly spread, the remaining work
        // cannot push the maximum below this.
        let current_max = self.loads.iter().copied().max().unwrap_or(0);
        let total: u64 = self.loads.iter().sum::<u64>() + self.suffix[depth];
        let avg = total.div_ceil(self.loads.len() as u64);
        if current_max.max(avg) >= self.best {
            return;
        }
        if self.memo.len() < MEMO_CAP {
            let key = (depth, self.machine_key());
            if !self.memo.insert(key) {
                return;
            }
        }
        let job = self.order[depth];
        let (class, time) = (self.inst.job(job).class, self.inst.job(job).time);
        let mut opened_empty = false;
        for u in 0..self.loads.len() {
            if self.loads[u] == 0 {
                // Machines are identical: trying one empty machine covers
                // all of them.
                if opened_empty {
                    continue;
                }
                opened_empty = true;
            }
            let had = self.masks[u] & (1 << class) != 0;
            let add = time + if had { 0 } else { self.inst.setup(class) };
            if self.loads[u] + add >= self.best {
                continue;
            }
            self.loads[u] += add;
            self.masks[u] |= 1 << class;
            self.assign[job] = u;
            self.dfs(depth + 1, budget);
            self.loads[u] -= add;
            if !had {
                self.masks[u] &= !(1 << class);
            }
            if budget.exhausted() {
                return;
            }
        }
    }
}

/// Greedy LPT incumbent: longest job first onto the machine with the least
/// resulting load (setup included when the class is new there).
fn greedy_assign(inst: &Instance, order: &[usize]) -> Vec<usize> {
    let m = inst.machines();
    let mut loads = vec![0u64; m];
    let mut masks = vec![0u32; m];
    let mut assign = vec![0usize; inst.num_jobs()];
    for &job in order {
        let (class, time) = (inst.job(job).class, inst.job(job).time);
        let u = (0..m)
            .min_by_key(|&u| {
                let add = time
                    + if masks[u] & (1 << class) != 0 {
                        0
                    } else {
                        inst.setup(class)
                    };
                (loads[u] + add, u)
            })
            .expect("at least one machine");
        let add = time
            + if masks[u] & (1 << class) != 0 {
                0
            } else {
                inst.setup(class)
            };
        loads[u] += add;
        masks[u] |= 1 << class;
        assign[job] = u;
    }
    assign
}

fn assignment_makespan(inst: &Instance, assign: &[usize]) -> u64 {
    let m = inst.machines();
    let mut loads = vec![0u64; m];
    let mut masks = vec![0u32; m];
    for (job, &u) in assign.iter().enumerate() {
        let (class, time) = (inst.job(job).class, inst.job(job).time);
        if masks[u] & (1 << class) == 0 {
            masks[u] |= 1 << class;
            loads[u] += inst.setup(class);
        }
        loads[u] += time;
    }
    loads.into_iter().max().unwrap_or(0)
}

/// Emits the class-contiguous schedule of an assignment: per machine,
/// ascending classes, one setup then that class's jobs back to back.
pub(crate) fn realize(inst: &Instance, assign: &[usize]) -> Schedule {
    let m = inst.machines();
    let mut out = Schedule::new(m);
    for u in 0..m {
        let mut cursor = Rational::ZERO;
        for class in 0..inst.num_classes() {
            let jobs: Vec<usize> = inst
                .class_jobs(class)
                .iter()
                .copied()
                .filter(|&j| assign[j] == u)
                .collect();
            if jobs.is_empty() {
                continue;
            }
            let s = Rational::from(inst.setup(class));
            out.push_setup(u, cursor, s, class);
            cursor += s;
            for job in jobs {
                let len = Rational::from(inst.job(job).time);
                out.push_piece(u, cursor, len, job, class);
                cursor += len;
            }
        }
    }
    out
}

/// Exact non-preemptive solve: closes on every instance the size limits
/// admit unless the node budget runs out first.
pub(crate) fn solve(inst: &Instance, budget: &mut NodeBudget<'_>) -> ExactSolve {
    let mut order: Vec<usize> = (0..inst.num_jobs()).collect();
    order.sort_by_key(|&j| std::cmp::Reverse((inst.job(j).time, j)));
    let mut suffix = vec![0u64; order.len() + 1];
    for k in (0..order.len()).rev() {
        suffix[k] = suffix[k + 1] + inst.job(order[k]).time;
    }
    let greedy = greedy_assign(inst, &order);
    let n = inst.num_jobs();
    let root_lb_rat = bounds::nonpreemptive_root_bound(inst);
    // All data is integral and non-preemptive schedules left-shift onto the
    // integer grid, so the optimum is an integer: round the root bound up.
    let root_lb = root_lb_rat.ceil().max(0) as u64;
    let mut search = Search {
        inst,
        suffix,
        loads: vec![0; inst.machines()],
        masks: vec![0; inst.machines()],
        assign: vec![0; n],
        best: assignment_makespan(inst, &greedy),
        best_assign: greedy,
        memo: HashSet::new(),
        root_lb,
        order,
    };
    search.dfs(0, budget);
    let closed = !budget.exhausted();
    let schedule = realize(inst, &search.best_assign);
    let upper = Rational::from(search.best);
    debug_assert_eq!(schedule.makespan(), upper);
    ExactSolve {
        lower: if closed {
            upper
        } else {
            Rational::from(root_lb).min(upper)
        },
        upper,
        nodes: budget.used(),
        status: if closed {
            ExactStatus::Closed
        } else {
            ExactStatus::Budget
        },
        schedule,
    }
}
