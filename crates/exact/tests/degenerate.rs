//! Degenerate and boundary coverage for the exact oracle surface: size
//! limits reject with the documented error payloads (not panics), trivial
//! single-class shapes close to hand-computed optima, and an exhausted node
//! budget degrades to a certified anytime sandwich — mirroring the
//! seqdep reduction's degenerate suite.

use bss_exact::{solve_bss, solve_seqdep, ExactConfig, ExactError, ExactStatus};
use bss_instance::{Instance, InstanceBuilder, Variant};
use bss_rational::Rational;
use bss_seqdep::SeqDepInstance;

/// One class with `jobs` unit jobs on `m` machines.
fn unit_class(m: usize, setup: u64, jobs: usize) -> Instance {
    let mut b = InstanceBuilder::new(m);
    b.add_batch(setup, &vec![1u64; jobs]);
    b.build().expect("valid by construction")
}

/// A uniform two-class seqdep instance small enough for the oracle.
fn small_seqdep(m: usize, c: usize) -> SeqDepInstance {
    let initial: Vec<u64> = (0..c).map(|i| 2 + i as u64).collect();
    let switch: Vec<Vec<u64>> = (0..c)
        .map(|i| {
            (0..c)
                .map(|j| if i == j { 0 } else { initial[j] })
                .collect()
        })
        .collect();
    let work: Vec<u64> = (0..c).map(|i| 5 + i as u64).collect();
    SeqDepInstance::new(m, initial, switch, work).expect("valid by construction")
}

#[test]
fn job_limit_rejects_with_exact_payload() {
    let inst = unit_class(2, 3, 21);
    let cfg = ExactConfig::default();
    for variant in Variant::ALL {
        assert_eq!(
            solve_bss(&inst, variant, &cfg).unwrap_err(),
            ExactError::TooManyJobs {
                actual: 21,
                limit: 20
            }
        );
    }
    // One fewer job fits the gate again.
    assert!(solve_bss(&unit_class(2, 3, 20), Variant::Splittable, &cfg).is_ok());
}

#[test]
fn machine_limit_rejects_with_exact_payload() {
    let inst = unit_class(6, 3, 2);
    let cfg = ExactConfig::default();
    assert_eq!(
        solve_bss(&inst, Variant::NonPreemptive, &cfg).unwrap_err(),
        ExactError::TooManyMachines {
            actual: 6,
            limit: 5
        }
    );
    assert_eq!(
        solve_seqdep(&small_seqdep(6, 2), &cfg).unwrap_err(),
        ExactError::TooManyMachines {
            actual: 6,
            limit: 5
        }
    );
}

#[test]
fn class_limit_rejects_with_exact_payload() {
    let mut b = InstanceBuilder::new(2);
    for i in 0..11u64 {
        b.add_batch(1 + i, &[1]);
    }
    let inst = b.build().expect("valid by construction");
    let cfg = ExactConfig::default();
    assert_eq!(
        solve_bss(&inst, Variant::Preemptive, &cfg).unwrap_err(),
        ExactError::TooManyClasses {
            actual: 11,
            limit: 10
        }
    );
    assert_eq!(
        solve_seqdep(&small_seqdep(2, 11), &cfg).unwrap_err(),
        ExactError::TooManyClasses {
            actual: 11,
            limit: 10
        }
    );
    // The limit check fires before any search: errors carry the *configured*
    // limit, so a tightened config reports itself.
    let tight = ExactConfig {
        max_classes: 3,
        ..ExactConfig::default()
    };
    assert_eq!(
        solve_seqdep(&small_seqdep(2, 4), &tight).unwrap_err(),
        ExactError::TooManyClasses {
            actual: 4,
            limit: 3
        }
    );
}

#[test]
fn single_class_optima_are_hand_computable() {
    // One class (setup 4, jobs [6]) on one machine: every variant pays
    // setup + work = 10.
    let mut b = InstanceBuilder::new(1);
    b.add_batch(4, &[6]);
    let inst = b.build().unwrap();
    let cfg = ExactConfig::default();
    for variant in Variant::ALL {
        let ex = solve_bss(&inst, variant, &cfg).unwrap();
        assert_eq!(ex.status, ExactStatus::Closed, "{variant}");
        assert_eq!(ex.opt(), Some(Rational::from(10u64)), "{variant}");
        assert_eq!(ex.guarantee(), Rational::ONE);
        assert!(bss_schedule::validate(ex.schedule(), &inst, variant).is_empty());
    }

    // One class (setup 3, jobs [5, 5]) on two machines: splitting the class
    // over both machines pays the setup twice — OPT = 3 + 5 = 8 for every
    // variant (each job is atomic anyway, so preemption buys nothing).
    let mut b = InstanceBuilder::new(2);
    b.add_batch(3, &[5, 5]);
    let inst = b.build().unwrap();
    for variant in Variant::ALL {
        let ex = solve_bss(&inst, variant, &cfg).unwrap();
        assert_eq!(ex.opt(), Some(Rational::from(8u64)), "{variant}");
    }

    // Same class on three machines: the third machine is dead weight (a
    // third setup never helps two jobs) — OPT stays 8 non-preemptively,
    // while the splittable relaxation spreads 10 units of work over three
    // setups: max(average (9+10)/3, spread 3 + 10/3) = 19/3.
    let mut b = InstanceBuilder::new(3);
    b.add_batch(3, &[5, 5]);
    let inst = b.build().unwrap();
    let ex = solve_bss(&inst, Variant::NonPreemptive, &cfg).unwrap();
    assert_eq!(ex.opt(), Some(Rational::from(8u64)));
    let ex = solve_bss(&inst, Variant::Splittable, &cfg).unwrap();
    assert_eq!(ex.opt(), Some(Rational::new(19, 3)));
}

#[test]
fn exhausted_budget_degrades_to_certified_sandwich() {
    // A shape the searches cannot close in one node: several classes of
    // uneven work on two machines.
    let mut b = InstanceBuilder::new(2);
    b.add_batch(5, &[3, 7]);
    b.add_batch(4, &[6, 2]);
    b.add_batch(7, &[1]);
    let inst = b.build().unwrap();
    let starved = ExactConfig {
        max_nodes: 1,
        ..ExactConfig::default()
    };
    let closed_cfg = ExactConfig::default();
    // Preemptive is excluded from the strict `Budget` claim: its oracle can
    // close by realizing the root lower bound before the first node is
    // spent, so a starved budget does not force degradation there (the
    // unconditional sandwich below still covers it).
    for variant in [Variant::Splittable, Variant::NonPreemptive] {
        let ex = solve_bss(&inst, variant, &starved).unwrap();
        assert_eq!(ex.status, ExactStatus::Budget, "{variant}");
        assert_eq!(ex.opt(), None, "a budgeted result must not claim OPT");
        assert!(ex.lower <= ex.upper, "{variant}");
        assert!(ex.guarantee() >= Rational::ONE, "{variant}");
        // The anytime incumbent is still a real schedule of this instance.
        assert!(
            bss_schedule::validate(ex.schedule(), &inst, variant).is_empty(),
            "{variant}"
        );
        assert_eq!(ex.schedule().makespan(), ex.upper, "{variant}");
        // The sandwich really contains OPT: close the same instance with
        // the default budget and check containment.
        let closed = solve_bss(&inst, variant, &closed_cfg).unwrap();
        let opt = closed.opt().expect("default budget closes this shape");
        assert!(ex.lower <= opt && opt <= ex.upper, "{variant}");
    }

    // Preemptive under starvation: whatever the status, the sandwich and
    // the incumbent's validity are unconditional.
    let ex = solve_bss(&inst, Variant::Preemptive, &starved).unwrap();
    assert!(ex.lower <= ex.upper);
    assert!(ex.guarantee() >= Rational::ONE);
    assert!(bss_schedule::validate(ex.schedule(), &inst, Variant::Preemptive).is_empty());
    assert_eq!(ex.schedule().makespan(), ex.upper);

    let sd = small_seqdep(2, 5);
    let ex = solve_seqdep(&sd, &starved).unwrap();
    assert_eq!(ex.status, ExactStatus::Budget);
    assert_eq!(ex.opt(), None);
    assert!(ex.lower <= ex.upper);
    let opt = solve_seqdep(&sd, &closed_cfg)
        .unwrap()
        .opt()
        .expect("default budget closes this shape");
    assert!(ex.lower <= opt && opt <= ex.upper);
}

#[test]
fn budget_reports_nodes_spent() {
    let inst = unit_class(2, 3, 4);
    let ex = solve_bss(&inst, Variant::NonPreemptive, &ExactConfig::default()).unwrap();
    assert!(ex.nodes > 0, "a real search spends nodes");
    assert!(
        ex.nodes <= ExactConfig::default().max_nodes,
        "closed searches stay within budget"
    );
}
