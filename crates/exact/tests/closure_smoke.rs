//! Closure smoke: the oracles must close (guarantee = 1) on the tiny
//! seeded families within the default node budget — the gate the workspace
//! oracle suite and the optgap study both stand on.

use bss_exact::{solve_bss, solve_seqdep, ExactConfig, ExactStatus};
use bss_instance::Variant;
use bss_rational::Rational;

const SEEDS: u64 = 200;

#[test]
fn bss_variants_close_on_tiny_seeds() {
    let cfg = ExactConfig::default();
    for variant in [
        Variant::Splittable,
        Variant::Preemptive,
        Variant::NonPreemptive,
    ] {
        for seed in 0..SEEDS {
            let inst = bss_gen::tiny(seed);
            let ex = solve_bss(&inst, variant, &cfg).expect("tiny fits the size limits");
            assert_eq!(
                ex.status,
                ExactStatus::Closed,
                "seed {seed} {variant:?} did not close: lower={:?} upper={:?} nodes={}",
                ex.lower,
                ex.upper,
                ex.nodes
            );
            assert_eq!(ex.guarantee(), Rational::ONE);
            let opt = ex.opt().expect("closed searches report OPT");
            assert_eq!(ex.schedule().makespan(), opt, "seed {seed} {variant:?}");
            let violations = bss_schedule::validate(ex.schedule(), &inst, variant);
            assert!(
                violations.is_empty(),
                "seed {seed} {variant:?}: {violations:?}"
            );
        }
    }
}

#[test]
fn seqdep_closes_on_tiny_seeds() {
    let cfg = ExactConfig::default();
    for seed in 0..SEEDS {
        let sd = bss_gen::seqdep::tiny_seqdep(seed);
        let ex = solve_seqdep(&sd, &cfg).expect("tiny fits the size limits");
        assert_eq!(
            ex.status,
            ExactStatus::Closed,
            "seed {seed} did not close: lower={:?} upper={:?} nodes={}",
            ex.lower,
            ex.upper,
            ex.nodes
        );
        assert_eq!(ex.guarantee(), Rational::ONE);
    }
}

#[test]
fn variants_are_ordered_split_le_pmtn_le_nonp() {
    let cfg = ExactConfig::default();
    for seed in 0..SEEDS {
        let inst = bss_gen::tiny(seed);
        let split = solve_bss(&inst, Variant::Splittable, &cfg).unwrap();
        let pmtn = solve_bss(&inst, Variant::Preemptive, &cfg).unwrap();
        let nonp = solve_bss(&inst, Variant::NonPreemptive, &cfg).unwrap();
        if let (Some(s), Some(p), Some(n)) = (split.opt(), pmtn.opt(), nonp.opt()) {
            assert!(s <= p, "seed {seed}: OPT_split > OPT_pmtn");
            assert!(p <= n, "seed {seed}: OPT_pmtn > OPT_nonp");
        }
    }
}
