//! 0/1 knapsack by dynamic programming — a test oracle.
//!
//! Used only in tests and benches to certify the continuous solver: for
//! integral weights, `continuous optimum >= 0/1 optimum >= continuous optimum
//! - max profit`, and the two coincide when the greedy solution is integral.

/// Maximizes `Σ p_i x_i` over `x ∈ {0,1}^k` with `Σ w_i x_i <= capacity`.
///
/// Standard `O(k * capacity)` DP; intended for small oracle instances.
/// Returns `(best profit, chosen indices)`.
#[must_use]
pub fn knapsack_01(profits: &[u64], weights: &[u64], capacity: u64) -> (u64, Vec<usize>) {
    assert_eq!(profits.len(), weights.len());
    let cap = capacity as usize;
    let k = profits.len();
    // best[w] = max profit with weight budget w; keep[i][w] for reconstruction.
    let mut best = vec![0u64; cap + 1];
    let mut keep = vec![false; k * (cap + 1)];
    for i in 0..k {
        let wi = weights[i] as usize;
        if wi > cap {
            continue;
        }
        for w in (wi..=cap).rev() {
            let candidate = best[w - wi] + profits[i];
            if candidate > best[w] {
                best[w] = candidate;
                keep[i * (cap + 1) + w] = true;
            }
        }
    }
    // Reconstruct.
    let mut chosen = Vec::new();
    let mut w = cap;
    for i in (0..k).rev() {
        if keep[i * (cap + 1) + w] {
            chosen.push(i);
            w -= weights[i] as usize;
        }
    }
    chosen.reverse();
    (best[cap], chosen)
}

#[cfg(test)]
mod tests {
    use bss_rational::Rational;
    use proptest::prelude::*;

    use crate::{continuous_knapsack, CkItem};

    use super::*;

    #[test]
    fn classic_example() {
        let (v, chosen) = knapsack_01(&[60, 100, 120], &[10, 20, 30], 50);
        assert_eq!(v, 220);
        assert_eq!(chosen, vec![1, 2]);
    }

    #[test]
    fn zero_capacity() {
        let (v, chosen) = knapsack_01(&[5], &[1], 0);
        assert_eq!(v, 0);
        assert!(chosen.is_empty());
    }

    #[test]
    fn oversized_items_skipped() {
        let (v, chosen) = knapsack_01(&[10, 3], &[100, 2], 5);
        assert_eq!(v, 3);
        assert_eq!(chosen, vec![1]);
    }

    #[test]
    fn reconstruction_is_consistent() {
        let profits = [7, 2, 9, 4, 8];
        let weights = [3, 1, 4, 2, 3];
        let (v, chosen) = knapsack_01(&profits, &weights, 7);
        let w: u64 = chosen.iter().map(|&i| weights[i]).sum();
        let p: u64 = chosen.iter().map(|&i| profits[i]).sum();
        assert!(w <= 7);
        assert_eq!(p, v);
    }

    proptest! {
        /// Continuous relaxation dominates the integral optimum and is within
        /// one item's profit of it.
        #[test]
        fn prop_continuous_sandwiches_integral(
            data in proptest::collection::vec((1u64..30, 1u64..15), 1..10),
            capacity in 1u64..60,
        ) {
            let profits: Vec<u64> = data.iter().map(|d| d.0).collect();
            let weights: Vec<u64> = data.iter().map(|d| d.1).collect();
            let (dp_value, _) = knapsack_01(&profits, &weights, capacity);
            let items: Vec<CkItem> = data
                .iter()
                .map(|d| CkItem { profit: d.0, weight: Rational::from(d.1) })
                .collect();
            let sol = continuous_knapsack(&items, Rational::from(capacity));
            prop_assert!(sol.value >= Rational::from(dp_value));
            let pmax = profits.iter().copied().max().unwrap_or(0);
            prop_assert!(sol.value <= Rational::from(dp_value + pmax));
            // Integral greedy solutions are optimal for the relaxation, hence
            // match the DP.
            if sol.split.is_none() {
                prop_assert!(sol.value.is_integer());
                prop_assert!(sol.value <= Rational::from(dp_value));
            }
        }
    }
}
