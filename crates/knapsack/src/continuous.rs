//! Exact continuous (fractional) knapsack with split item.

use bss_rational::Rational;

/// An item of the continuous knapsack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CkItem {
    /// Profit `p_i` (a setup time in the scheduling application).
    pub profit: u64,
    /// Weight `w_i >= 0`.
    pub weight: Rational,
}

/// An optimal solution of the continuous knapsack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkSolution {
    /// `x_i ∈ [0, 1]` per item; at most one entry is fractional.
    pub x: Vec<Rational>,
    /// Index of the split item (`0 < x_e < 1`), if any.
    pub split: Option<usize>,
    /// Total profit `Σ p_i x_i`.
    pub value: Rational,
    /// Total weight `Σ w_i x_i` (`= min(capacity, Σ w_i)` unless capacity < 0).
    pub used: Rational,
}

impl CkSolution {
    /// Indices with `x_i == 1`.
    #[must_use]
    pub fn selected(&self) -> Vec<usize> {
        self.x
            .iter()
            .enumerate()
            .filter(|(_, x)| **x == Rational::ONE)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices with `x_i == 0` (the paper's "unselected" classes that pay an
    /// extra setup).
    #[must_use]
    pub fn zero_set(&self) -> Vec<usize> {
        self.x
            .iter()
            .enumerate()
            .filter(|(_, x)| x.is_zero())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Solves the continuous knapsack exactly by the greedy ratio rule.
///
/// Items are taken in order of decreasing `p_i / w_i` (zero-weight items
/// first — they are free profit); the first item that does not fit becomes the
/// split item. Runs in `O(k log k)` for `k` items. A non-positive capacity
/// yields the all-zero solution.
#[must_use]
pub fn continuous_knapsack(items: &[CkItem], capacity: Rational) -> CkSolution {
    let mut x = Vec::new();
    let mut order = Vec::new();
    let (split, value) = continuous_knapsack_in(items, capacity, &mut order, &mut x);
    // The all-zero solution uses no weight; `capacity.min(...)` would report
    // a negative `used` for non-positive capacities.
    let used = if capacity.is_positive() {
        capacity.min(
            items
                .iter()
                .map(|i| i.weight)
                .fold(Rational::ZERO, |a, b| a + b),
        )
    } else {
        Rational::ZERO
    };
    CkSolution {
        x,
        split,
        value,
        used,
    }
}

/// Allocation-free core of [`continuous_knapsack`]: solves into caller-owned
/// buffers (`order` is scratch, `x` receives one entry per item) and returns
/// `(split item, total profit)`. Once the buffers have grown to the item
/// count, repeated calls perform no heap allocation — this is what the dual
/// probes of the preemptive algorithm run on every guess.
pub fn continuous_knapsack_in(
    items: &[CkItem],
    capacity: Rational,
    order: &mut Vec<usize>,
    x: &mut Vec<Rational>,
) -> (Option<usize>, Rational) {
    x.clear();
    x.resize(items.len(), Rational::ZERO);
    if !capacity.is_positive() || items.is_empty() {
        return (None, Rational::ZERO);
    }
    order.clear();
    order.extend(0..items.len());
    // Decreasing p/w; zero-weight first. Compare p_a/w_a > p_b/w_b via
    // cross-multiplication (weights are non-negative rationals). The
    // index tiebreak makes the order total, so the in-place unstable sort
    // is deterministic (and, unlike a stable sort, buffer-free).
    order.sort_unstable_by(|&a, &b| {
        let (ia, ib) = (&items[a], &items[b]);
        let lhs = Rational::from(ia.profit) * ib.weight;
        let rhs = Rational::from(ib.profit) * ia.weight;
        rhs.cmp(&lhs).then(a.cmp(&b))
    });
    let mut remaining = capacity;
    let mut value = Rational::ZERO;
    let mut split = None;
    for &i in order.iter() {
        let item = &items[i];
        if item.weight <= remaining {
            x[i] = Rational::ONE;
            remaining -= item.weight;
            value += Rational::from(item.profit);
        } else {
            // remaining < weight, so weight > 0.
            if remaining.is_positive() {
                let frac = remaining / item.weight;
                x[i] = frac;
                value += Rational::from(item.profit) * frac;
                split = Some(i);
            }
            break;
        }
    }
    (split, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i128) -> Rational {
        Rational::from_int(v)
    }

    fn item(profit: u64, weight: i128) -> CkItem {
        CkItem {
            profit,
            weight: r(weight),
        }
    }

    #[test]
    fn takes_best_ratio_first() {
        // ratios: 10/2=5, 9/3=3, 4/4=1
        let items = [item(10, 2), item(9, 3), item(4, 4)];
        let sol = continuous_knapsack(&items, r(5));
        assert_eq!(sol.x[0], Rational::ONE);
        assert_eq!(sol.x[1], Rational::ONE);
        assert_eq!(sol.x[2], Rational::ZERO);
        assert_eq!(sol.value, r(19));
        assert_eq!(sol.split, None);
    }

    #[test]
    fn split_item_fraction() {
        let items = [item(10, 2), item(9, 3)];
        let sol = continuous_knapsack(&items, r(4));
        assert_eq!(sol.x[0], Rational::ONE);
        assert_eq!(sol.x[1], Rational::new(2, 3));
        assert_eq!(sol.split, Some(1));
        assert_eq!(sol.value, r(10) + r(6));
        assert_eq!(sol.zero_set(), Vec::<usize>::new());
        assert_eq!(sol.selected(), vec![0]);
    }

    #[test]
    fn zero_weight_items_always_selected() {
        let items = [item(5, 0), item(1, 10)];
        let sol = continuous_knapsack(&items, r(1));
        assert_eq!(sol.x[0], Rational::ONE);
        assert_eq!(sol.x[1], Rational::new(1, 10));
    }

    #[test]
    fn non_positive_capacity() {
        let items = [item(5, 1)];
        let sol = continuous_knapsack(&items, r(0));
        assert_eq!(sol.x, vec![Rational::ZERO]);
        assert_eq!(sol.value, r(0));
        assert_eq!(sol.used, r(0));
        let sol = continuous_knapsack(&items, r(-3));
        assert_eq!(sol.value, r(0));
        assert_eq!(sol.used, r(0), "the all-zero solution uses no weight");
    }

    #[test]
    fn capacity_exceeding_total_weight_selects_all() {
        let items = [item(3, 2), item(4, 5)];
        let sol = continuous_knapsack(&items, r(100));
        assert!(sol.x.iter().all(|x| *x == Rational::ONE));
        assert_eq!(sol.value, r(7));
        assert_eq!(sol.used, r(7));
        assert_eq!(sol.split, None);
    }

    #[test]
    fn weight_conservation() {
        let items = [item(7, 4), item(3, 3), item(9, 5)];
        let cap = r(6);
        let sol = continuous_knapsack(&items, cap);
        let used: Rational = items
            .iter()
            .zip(&sol.x)
            .map(|(i, x)| i.weight * *x)
            .fold(Rational::ZERO, |a, b| a + b);
        assert_eq!(used, cap);
    }

    #[test]
    fn empty_items() {
        let sol = continuous_knapsack(&[], r(5));
        assert!(sol.x.is_empty());
        assert_eq!(sol.value, r(0));
    }
}
