//! Knapsack solvers for the preemptive 3/2-dual approximation.
//!
//! Step 3.a of Algorithm 3 (Deppert & Jansen, SPAA 2019) decides which cheap
//! classes are scheduled entirely *outside* the large machines by maximizing
//! the total setup time of the selected classes subject to the free time `Y`:
//! a **continuous knapsack** with profits `p_i = s_i` and rational weights
//! `w_i = P(C_i) - L*_i`. The greedy ratio rule solves it exactly, with at
//! most one fractional *split item* `e` (the paper's `(x_cks)_e ∈ (0, 1)`).
//!
//! A small 0/1 dynamic program is included as a test oracle: the continuous
//! optimum must dominate the integral optimum, and coincide with it whenever
//! the greedy solution happens to be integral.

mod continuous;
mod dp;

pub use continuous::{continuous_knapsack, continuous_knapsack_in, CkItem, CkSolution};
pub use dp::knapsack_01;
