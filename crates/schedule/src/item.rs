//! Placements: the atoms of a schedule.

use bss_instance::{ClassId, JobId};
use bss_json::{FromJson, JsonError, ToJson, Value};
use bss_rational::Rational;

/// What occupies a stretch of machine time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ItemKind {
    /// A (never preempted) setup of the given class.
    Setup(ClassId),
    /// A piece of a job. `class` is redundant with the instance's job table
    /// but keeps placements self-describing for renderers.
    Piece {
        /// The job this piece belongs to.
        job: JobId,
        /// The job's class.
        class: ClassId,
    },
}

impl ItemKind {
    /// The class this item belongs to.
    #[must_use]
    pub fn class(&self) -> ClassId {
        match *self {
            ItemKind::Setup(c) => c,
            ItemKind::Piece { class, .. } => class,
        }
    }

    /// `true` iff this is a setup.
    #[must_use]
    pub fn is_setup(&self) -> bool {
        matches!(self, ItemKind::Setup(_))
    }
}

// The wire format follows serde's externally-tagged enum convention:
// `{"Setup": 3}` and `{"Piece": {"job": 7, "class": 3}}`.
impl ToJson for ItemKind {
    fn to_json_value(&self) -> Value {
        match *self {
            ItemKind::Setup(class) => {
                Value::Object(vec![("Setup".into(), Value::Int(class as i128))])
            }
            ItemKind::Piece { job, class } => Value::Object(vec![(
                "Piece".into(),
                Value::Object(vec![
                    ("job".into(), Value::Int(job as i128)),
                    ("class".into(), Value::Int(class as i128)),
                ]),
            )]),
        }
    }
}

impl FromJson for ItemKind {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        if let Some(class) = value.field("Setup") {
            return Ok(ItemKind::Setup(bss_json::int_from(class, "Setup class")?));
        }
        if let Some(piece) = value.field("Piece") {
            return Ok(ItemKind::Piece {
                job: bss_json::int_from(bss_json::required(piece, "job")?, "Piece.job")?,
                class: bss_json::int_from(bss_json::required(piece, "class")?, "Piece.class")?,
            });
        }
        Err(JsonError::new(format!(
            "expected `Setup` or `Piece` item, found {}",
            value.kind()
        )))
    }
}

/// A contiguous block of time on one machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Machine index in `0..m`.
    pub machine: usize,
    /// Start time (`>= 0`).
    pub start: Rational,
    /// Duration (`> 0`).
    pub len: Rational,
    /// The occupant.
    pub kind: ItemKind,
}

impl Placement {
    /// Creates a placement.
    #[must_use]
    pub fn new(machine: usize, start: Rational, len: Rational, kind: ItemKind) -> Self {
        Placement {
            machine,
            start,
            len,
            kind,
        }
    }

    /// End time `start + len`.
    #[must_use]
    pub fn end(&self) -> Rational {
        self.start + self.len
    }
}

impl ToJson for Placement {
    fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("machine".into(), Value::Int(self.machine as i128)),
            ("start".into(), self.start.to_json_value()),
            ("len".into(), self.len.to_json_value()),
            ("kind".into(), self.kind.to_json_value()),
        ])
    }
}

impl FromJson for Placement {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(Placement {
            machine: bss_json::int_from(bss_json::required(value, "machine")?, "machine")?,
            start: Rational::from_json_value(bss_json::required(value, "start")?)?,
            len: Rational::from_json_value(bss_json::required(value, "len")?)?,
            kind: ItemKind::from_json_value(bss_json::required(value, "kind")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_accessors() {
        let s = ItemKind::Setup(3);
        let p = ItemKind::Piece { job: 7, class: 3 };
        assert!(s.is_setup());
        assert!(!p.is_setup());
        assert_eq!(s.class(), 3);
        assert_eq!(p.class(), 3);
    }

    #[test]
    fn placement_end() {
        let p = Placement::new(
            0,
            Rational::new(1, 2),
            Rational::new(3, 2),
            ItemKind::Setup(0),
        );
        assert_eq!(p.end(), Rational::from(2u64));
    }
}
