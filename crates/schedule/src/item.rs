//! Placements: the atoms of a schedule.

use bss_instance::{ClassId, JobId};
use bss_rational::Rational;
use serde::{Deserialize, Serialize};

/// What occupies a stretch of machine time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ItemKind {
    /// A (never preempted) setup of the given class.
    Setup(ClassId),
    /// A piece of a job. `class` is redundant with the instance's job table
    /// but keeps placements self-describing for renderers.
    Piece {
        /// The job this piece belongs to.
        job: JobId,
        /// The job's class.
        class: ClassId,
    },
}

impl ItemKind {
    /// The class this item belongs to.
    #[must_use]
    pub fn class(&self) -> ClassId {
        match *self {
            ItemKind::Setup(c) => c,
            ItemKind::Piece { class, .. } => class,
        }
    }

    /// `true` iff this is a setup.
    #[must_use]
    pub fn is_setup(&self) -> bool {
        matches!(self, ItemKind::Setup(_))
    }
}

/// A contiguous block of time on one machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Machine index in `0..m`.
    pub machine: usize,
    /// Start time (`>= 0`).
    pub start: Rational,
    /// Duration (`> 0`).
    pub len: Rational,
    /// The occupant.
    pub kind: ItemKind,
}

impl Placement {
    /// Creates a placement.
    #[must_use]
    pub fn new(machine: usize, start: Rational, len: Rational, kind: ItemKind) -> Self {
        Placement {
            machine,
            start,
            len,
            kind,
        }
    }

    /// End time `start + len`.
    #[must_use]
    pub fn end(&self) -> Rational {
        self.start + self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_accessors() {
        let s = ItemKind::Setup(3);
        let p = ItemKind::Piece { job: 7, class: 3 };
        assert!(s.is_setup());
        assert!(!p.is_setup());
        assert_eq!(s.class(), 3);
        assert_eq!(p.class(), 3);
    }

    #[test]
    fn placement_end() {
        let p = Placement::new(0, Rational::new(1, 2), Rational::new(3, 2), ItemKind::Setup(0));
        assert_eq!(p.end(), Rational::from(2u64));
    }
}
