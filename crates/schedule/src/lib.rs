//! Schedule representations, streaming placement sinks, and feasibility
//! validators — the compact-first schedule pipeline.
//!
//! A schedule assigns *placements* — setups and job pieces with exact rational
//! start times and lengths — to machines. Two representations are provided:
//!
//! * [`CompactSchedule`]: machine *configurations with multiplicities*, the
//!   paper's "weaker definition of schedules" and the **primary form** the
//!   near-linear builders emit. The `O(n + c log(c+m))` bound of Theorem 3 is
//!   only attainable because a schedule may repeat one configuration on many
//!   machines without writing them all out.
//! * [`Schedule`]: one explicit placement list; the universal format consumed
//!   by renderers, serializers and the repair passes of the non-preemptive
//!   algorithm.
//!
//! ## Who owns what, and when expansion happens
//!
//! Builders own the compact form and keep it as long as possible. When an
//! explicit schedule is needed, [`CompactSchedule::expand_into`] streams the
//! placements **once** into any [`PlacementSink`] — the explicit [`Schedule`]
//! and bare `Vec<Placement>` both implement the trait — replacing the old
//! expand-then-absorb double copy. [`CompactSchedule::expand`] is the
//! convenience wrapper; both report malformed groups as a
//! [`Violation`] instead of panicking.
//!
//! ## Which validator to use
//!
//! * [`validate_compact`] checks a [`CompactSchedule`] directly on its
//!   groups: one representative machine per group region plus the
//!   group-boundary/width invariants, with job totals counting
//!   multiplicities. Use it for solver-native compact output — it never pays
//!   `O(total_items)`.
//! * [`validate`] walks an explicit [`Schedule`] in one `O(P log P)`
//!   sort-and-sweep. Use it for repaired schedules (the non-preemptive
//!   builder's step 4 edits placements in place) and anything deserialized.
//!
//! Both enforce the same model: machine exclusivity, setup coverage on every
//! class switch, un-preempted setups, exact load conservation per job, and
//! the variant-specific job rules (contiguity / no self-parallelism).

mod compact;
mod item;
mod schedule;
mod sink;
mod stats;
mod validate;

pub use compact::{CompactSchedule, ConfigGroup, ConfigItem, MachineConfig};
pub use item::{ItemKind, Placement};
pub use schedule::Schedule;
pub use sink::PlacementSink;
pub use stats::ScheduleStats;
pub use validate::{validate, validate_compact, Violation};
