//! Schedule representations and feasibility validators.
//!
//! A schedule assigns *placements* — setups and job pieces with exact rational
//! start times and lengths — to machines. Two representations are provided:
//!
//! * [`Schedule`]: one explicit placement list; the universal format consumed
//!   by validators, renderers and tests.
//! * [`CompactSchedule`]: machine *configurations with multiplicities*, the
//!   paper's "weaker definition of schedules" for the splittable variant. The
//!   `O(n + c log(c+m))` bound of Theorem 3 is only attainable because a
//!   schedule may repeat one configuration on many machines without writing
//!   them all out; [`CompactSchedule::expand`] materializes the explicit form
//!   (at `O(n + m)` cost) for validation and rendering.
//!
//! [`validate`] checks full feasibility against an [`bss_instance::Instance`] under each of
//! the three variants: machine exclusivity, setup coverage on every class
//! switch, un-preempted setups, exact load conservation per job, and the
//! variant-specific job rules (contiguity / no self-parallelism).

mod compact;
mod item;
mod schedule;
mod stats;
mod validate;

pub use compact::{CompactSchedule, ConfigGroup, ConfigItem, MachineConfig};
pub use item::{ItemKind, Placement};
pub use schedule::Schedule;
pub use stats::ScheduleStats;
pub use validate::{validate, Violation};
