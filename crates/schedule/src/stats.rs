//! Schedule statistics: utilization, setup overhead, preemption counts.
//!
//! Used by the reports and examples to characterize algorithm output beyond
//! the makespan (e.g. the paper's algorithms deliberately trade setup
//! duplication for balance; these numbers make that visible).

use bss_instance::Instance;
use bss_rational::Rational;

use crate::{ItemKind, Schedule};

/// Aggregate statistics of a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleStats {
    /// The makespan.
    pub makespan: Rational,
    /// Total setup time over all machines.
    pub setup_time: Rational,
    /// Total job processing time placed.
    pub processing_time: Rational,
    /// Total idle time below the makespan (`m · makespan − busy`).
    pub idle_time: Rational,
    /// Number of setup placements.
    pub num_setups: usize,
    /// Number of job pieces in excess of the job count — 0 means no job is
    /// split at all.
    pub extra_pieces: usize,
    /// Machines with at least one placement.
    pub machines_used: usize,
}

impl ScheduleStats {
    /// Computes statistics for `schedule` under `instance`.
    #[must_use]
    pub fn of(schedule: &Schedule, instance: &Instance) -> Self {
        let mut setup_time = Rational::ZERO;
        let mut processing_time = Rational::ZERO;
        let mut num_setups = 0usize;
        let mut pieces = 0usize;
        let mut used = vec![false; instance.machines()];
        for p in schedule.placements() {
            if p.machine < used.len() {
                used[p.machine] = true;
            }
            match p.kind {
                ItemKind::Setup(_) => {
                    num_setups += 1;
                    setup_time += p.len;
                }
                ItemKind::Piece { .. } => {
                    pieces += 1;
                    processing_time += p.len;
                }
            }
        }
        let makespan = schedule.makespan();
        let busy = setup_time + processing_time;
        ScheduleStats {
            makespan,
            setup_time,
            processing_time,
            idle_time: makespan * instance.machines() - busy,
            num_setups,
            extra_pieces: pieces.saturating_sub(instance.num_jobs()),
            machines_used: used.iter().filter(|&&u| u).count(),
        }
    }

    /// Fraction of busy time spent on setups, as `f64` for reporting.
    #[must_use]
    pub fn setup_fraction(&self) -> f64 {
        let busy = self.setup_time + self.processing_time;
        if busy.is_zero() {
            0.0
        } else {
            (self.setup_time / busy).to_f64()
        }
    }

    /// Average machine utilization below the makespan, as `f64`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let total = self.makespan * (self.machines_used.max(1));
        if total.is_zero() {
            0.0
        } else {
            ((self.setup_time + self.processing_time) / total)
                .to_f64()
                .min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use bss_instance::InstanceBuilder;

    use super::*;

    fn r(v: i128) -> Rational {
        Rational::from_int(v)
    }

    fn sample() -> (Instance, Schedule) {
        let mut b = InstanceBuilder::new(2);
        b.add_batch(2, &[4, 6]);
        let inst = b.build().unwrap();
        let mut s = Schedule::new(2);
        s.push_setup(0, r(0), r(2), 0);
        s.push_piece(0, r(2), r(4), 0, 0);
        s.push_setup(1, r(0), r(2), 0);
        s.push_piece(1, r(2), r(3), 1, 0);
        s.push_piece(1, r(5), r(3), 1, 0); // split job 1
        (inst, s)
    }

    #[test]
    fn counts_and_times() {
        let (inst, s) = sample();
        let st = ScheduleStats::of(&s, &inst);
        assert_eq!(st.makespan, r(8));
        assert_eq!(st.setup_time, r(4));
        assert_eq!(st.processing_time, r(10));
        assert_eq!(st.num_setups, 2);
        assert_eq!(st.extra_pieces, 1);
        assert_eq!(st.machines_used, 2);
        assert_eq!(st.idle_time, r(16) - r(14));
    }

    #[test]
    fn fractions() {
        let (inst, s) = sample();
        let st = ScheduleStats::of(&s, &inst);
        assert!((st.setup_fraction() - 4.0 / 14.0).abs() < 1e-12);
        assert!(st.utilization() > 0.8 && st.utilization() <= 1.0);
    }

    #[test]
    fn empty_schedule() {
        let mut b = InstanceBuilder::new(1);
        b.add_batch(1, &[1]);
        let inst = b.build().unwrap();
        let st = ScheduleStats::of(&Schedule::new(1), &inst);
        assert_eq!(st.makespan, Rational::ZERO);
        assert_eq!(st.setup_fraction(), 0.0);
        assert_eq!(st.utilization(), 0.0);
        assert_eq!(st.machines_used, 0);
    }
}
