//! [`PlacementSink`]: the streaming destination of the compact-first
//! pipeline.
//!
//! Builders and [`CompactSchedule::expand_into`](crate::CompactSchedule::expand_into)
//! emit placements *once*, directly into their final destination, instead of
//! materializing an intermediate [`Schedule`] that is then copied again
//! (the old `absorb(expand())` pattern). Anything that can receive a
//! [`Placement`] is a sink: the explicit [`Schedule`], a plain
//! `Vec<Placement>`, or a custom consumer (statistics, streaming writers).

use bss_rational::Rational;

use crate::{ItemKind, Placement, Schedule};

/// A streaming consumer of placements.
///
/// Implementors receive placements in whatever order the producer emits
/// them; like [`Schedule`], a sink must not assume per-machine or
/// chronological order. Zero-length placements may be forwarded — sinks that
/// care (like [`Schedule`]) are expected to drop them.
pub trait PlacementSink {
    /// Receives one placement.
    fn place(&mut self, p: Placement);

    /// The sink's machine-count bound, when it has one. Producers (like the
    /// wrap emitters) assert their templates against it, so a builder bug
    /// addressing a machine past the bound fails loudly instead of
    /// streaming placements onto machines that do not exist. Sinks without
    /// an inherent bound (e.g. `Vec<Placement>`) return `None`.
    fn machine_bound(&self) -> Option<usize> {
        None
    }

    /// Convenience: a setup placement.
    fn place_setup(&mut self, machine: usize, start: Rational, len: Rational, class: usize) {
        self.place(Placement::new(machine, start, len, ItemKind::Setup(class)));
    }

    /// Convenience: a job-piece placement.
    fn place_piece(
        &mut self,
        machine: usize,
        start: Rational,
        len: Rational,
        job: usize,
        class: usize,
    ) {
        self.place(Placement::new(
            machine,
            start,
            len,
            ItemKind::Piece { job, class },
        ));
    }
}

impl PlacementSink for Schedule {
    fn place(&mut self, p: Placement) {
        self.push(p);
    }

    fn machine_bound(&self) -> Option<usize> {
        Some(self.machines())
    }
}

/// A bare placement buffer (used by
/// [`wrap_explicit`](../bss_wrap/fn.wrap_explicit.html)-style callers that
/// want the raw list without a [`Schedule`] wrapper).
impl PlacementSink for Vec<Placement> {
    fn place(&mut self, p: Placement) {
        if p.len.is_positive() {
            self.push(p);
        }
    }
}

impl<S: PlacementSink + ?Sized> PlacementSink for &mut S {
    fn place(&mut self, p: Placement) {
        (**self).place(p);
    }

    fn machine_bound(&self) -> Option<usize> {
        (**self).machine_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_sink() {
        let mut s = Schedule::new(2);
        {
            let sink: &mut dyn PlacementSink = &mut s;
            sink.place_setup(0, Rational::ZERO, Rational::ONE, 0);
            sink.place_piece(0, Rational::ONE, Rational::from(2u64), 3, 0);
        }
        assert_eq!(s.placements().len(), 2);
        assert_eq!(s.makespan(), Rational::from(3u64));
    }

    #[test]
    fn vec_sink_drops_zero_length() {
        let mut v: Vec<Placement> = Vec::new();
        v.place_piece(0, Rational::ZERO, Rational::ZERO, 0, 0);
        v.place_piece(0, Rational::ZERO, Rational::ONE, 0, 0);
        assert_eq!(v.len(), 1);
    }
}
