//! Feasibility validation of schedules, explicit and compact.
//!
//! The checks implement the paper's model requirements verbatim:
//!
//! 1. every placement lies on a real machine, starts at time `>= 0`;
//! 2. machines are single-threaded: no two placements on one machine overlap;
//! 3. a setup `s_i` (of full length `s_i`) separates load of class `i` from
//!    anything a machine did before — walking each machine's timeline, every
//!    job piece must be preceded by a setup of its class with no
//!    different-class item in between (idle time is allowed: a machine stays
//!    configured while idle);
//! 4. every job is fully scheduled: its pieces sum to exactly `t_j`;
//! 5. variant rules: non-preemptive jobs are a single piece; preemptive jobs
//!    never overlap themselves across machines; splittable jobs are free.
//!
//! Setups are un-preempted by construction (a placement is contiguous), and
//! check 2 ensures nothing intersects them.
//!
//! Two validators are provided:
//!
//! * [`validate`] walks an explicit [`Schedule`] with a single
//!   `O(P log P)` sort-and-sweep over all `P` placements (two flat index
//!   sorts — by machine and by job — instead of per-machine re-filtering);
//! * [`validate_compact`] checks a [`CompactSchedule`] directly on its
//!   configuration groups in `O((P' + c) log P')` for `P'` *stored* items:
//!   timeline checks run once per machine *region* (a maximal run of
//!   machines covered by the same set of groups — one representative
//!   machine per group and per group boundary), so a group of multiplicity
//!   10⁶ costs the same as multiplicity 1. Job totals count multiplicities
//!   exactly. Use it on solver-native compact output; repaired explicit
//!   schedules go through [`validate`].

use bss_instance::{Instance, Variant};
use bss_rational::Rational;

use crate::{CompactSchedule, ItemKind, Schedule};

/// A feasibility violation, with enough context to debug the offending
/// algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Placement on machine `>= m` (or a compact group past the last
    /// machine).
    MachineOutOfRange { machine: usize },
    /// A piece of a job the instance does not have (`job >= n`).
    UnknownJob { job: usize },
    /// A setup of a class the instance does not have (`class >= c`).
    UnknownClass { class: usize },
    /// Times too large for exact arithmetic (only reachable from hand-crafted
    /// schedules; every feasible schedule's times are far below the bounds).
    TimeOverflow,
    /// Placement starting before time 0.
    NegativeStart { machine: usize },
    /// Two placements on one machine intersect.
    Overlap { machine: usize, at: Rational },
    /// A job piece not covered by a setup of its class.
    MissingSetup {
        machine: usize,
        job: usize,
        class: usize,
    },
    /// A setup placement whose length differs from `s_i`.
    WrongSetupLength {
        machine: usize,
        class: usize,
        len: Rational,
    },
    /// A job piece referencing the wrong class.
    WrongPieceClass { job: usize, class: usize },
    /// Job's scheduled time differs from `t_j`.
    WrongJobTotal { job: usize, scheduled: Rational },
    /// Non-preemptive job split into several pieces.
    JobSplit { job: usize, pieces: usize },
    /// Preemptive job running on two machines at once.
    JobParallel { job: usize, at: Rational },
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Violation::MachineOutOfRange { machine } => {
                write!(f, "placement on non-existent machine {machine}")
            }
            Violation::UnknownJob { job } => {
                write!(f, "placement references non-existent job {job}")
            }
            Violation::UnknownClass { class } => {
                write!(f, "setup references non-existent class {class}")
            }
            Violation::TimeOverflow => {
                write!(f, "schedule times overflow exact arithmetic")
            }
            Violation::NegativeStart { machine } => {
                write!(f, "placement on machine {machine} starts before time 0")
            }
            Violation::Overlap { machine, at } => {
                write!(f, "overlapping placements on machine {machine} at {at}")
            }
            Violation::MissingSetup {
                machine,
                job,
                class,
            } => write!(
                f,
                "job {job} (class {class}) on machine {machine} runs without its setup"
            ),
            Violation::WrongSetupLength {
                machine,
                class,
                len,
            } => write!(
                f,
                "setup of class {class} on machine {machine} has length {len}"
            ),
            Violation::WrongPieceClass { job, class } => {
                write!(f, "piece of job {job} labeled with wrong class {class}")
            }
            Violation::WrongJobTotal { job, scheduled } => {
                write!(f, "job {job} scheduled for {scheduled} time units")
            }
            Violation::JobSplit { job, pieces } => {
                write!(f, "non-preemptive job {job} split into {pieces} pieces")
            }
            Violation::JobParallel { job, at } => {
                write!(
                    f,
                    "preemptive job {job} runs in parallel with itself at {at}"
                )
            }
        }
    }
}

/// `true` iff `r` is small enough that any pairwise comparison or single
/// addition with another bounded rational stays inside `i128` (matches the
/// JSON wire-format bounds `Rational::MAX_WIRE_NUM`/`MAX_WIRE_DEN`).
fn bounded(r: Rational) -> bool {
    (-Rational::MAX_WIRE_NUM..=Rational::MAX_WIRE_NUM).contains(&r.numer())
        && r.denom() <= Rational::MAX_WIRE_DEN
}

/// `r · count` with the [`bounded`] guard; `None` when the product leaves the
/// exact-arithmetic budget.
fn bounded_mul_count(r: Rational, count: u64) -> Option<Rational> {
    let num = r.numer().checked_mul(count as i128)?;
    if !(-Rational::MAX_WIRE_NUM..=Rational::MAX_WIRE_NUM).contains(&num) {
        return None;
    }
    Some(Rational::new(num, r.denom()))
}

/// Per-job accumulation state shared by both validators.
struct JobLoads {
    sums: Vec<Rational>,
    counts: Vec<u32>,
    overflow: bool,
}

impl JobLoads {
    fn new(jobs: usize) -> Self {
        JobLoads {
            sums: vec![Rational::ZERO; jobs],
            counts: vec![0; jobs],
            overflow: false,
        }
    }

    /// Adds `len` (`count` incidences of it) to `job`'s scheduled time,
    /// flagging overflow instead of panicking.
    fn add(&mut self, job: usize, len: Rational, count: u64) {
        if self.overflow {
            return;
        }
        let Some(total) = bounded_mul_count(len, count) else {
            self.overflow = true;
            return;
        };
        match self.sums[job].checked_add(total).filter(|&s| bounded(s)) {
            Some(sum) => self.sums[job] = sum,
            None => self.overflow = true,
        }
        self.counts[job] = self.counts[job].saturating_add(count.min(u32::MAX as u64) as u32);
    }

    /// Check 4: load conservation per job. Returns `false` (after reporting
    /// [`Violation::TimeOverflow`]) when the sums left exact arithmetic.
    fn check_totals(&self, instance: &Instance, violations: &mut Vec<Violation>) -> bool {
        if self.overflow {
            violations.push(Violation::TimeOverflow);
            return false;
        }
        for (job, &scheduled) in self.sums.iter().enumerate() {
            if scheduled != Rational::from(instance.job(job).time) {
                violations.push(Violation::WrongJobTotal { job, scheduled });
            }
        }
        true
    }
}

/// Walks one machine timeline (items pre-sorted by start): overlap and setup
/// coverage. `machine` is only used for reporting — for compact schedules it
/// is the representative machine of a region.
fn sweep_timeline<'a>(
    machine: usize,
    items: impl Iterator<Item = (Rational, Rational, &'a ItemKind)>,
    violations: &mut Vec<Violation>,
) {
    let mut prev_end = Rational::ZERO;
    let mut first = true;
    let mut configured: Option<usize> = None;
    for (start, len, kind) in items {
        if !first && start < prev_end {
            violations.push(Violation::Overlap { machine, at: start });
        }
        prev_end = prev_end.max(start + len);
        first = false;
        match *kind {
            ItemKind::Setup(class) => configured = Some(class),
            ItemKind::Piece { job, class } => {
                if configured != Some(class) {
                    violations.push(Violation::MissingSetup {
                        machine,
                        job,
                        class,
                    });
                    // Avoid cascading reports for the same run.
                    configured = Some(class);
                }
            }
        }
    }
}

/// Checks full feasibility of `schedule` for `instance` under `variant`.
///
/// Returns all violations found (empty = feasible). Runs in `O(P log P)`
/// for `P` placements: one pass for range/id checks, one index sort by
/// `(machine, start)` for the timeline sweep, one index sort by
/// `(job, start)` for the variant rules — no per-machine or per-job buffers.
#[must_use]
pub fn validate(schedule: &Schedule, instance: &Instance, variant: Variant) -> Vec<Violation> {
    let mut violations = Vec::new();
    let m = instance.machines();
    let placements = schedule.placements();

    // 0. Magnitude guard: all later arithmetic (cross-multiplied comparisons,
    // `start + len`) is exact and panics on i128 overflow, so reject times
    // outside the wire-format bounds up front. Feasible schedules sit many
    // orders of magnitude below the bounds.
    for p in placements {
        let end_bounded = p.start.checked_add(p.len).is_some_and(bounded);
        if !bounded(p.start) || !bounded(p.len) || !end_bounded {
            return vec![Violation::TimeOverflow];
        }
    }

    // 1. Range and id checks; collect the in-range placements for the sweep
    // and the valid job pieces for the per-job checks.
    let mut order: Vec<u32> = Vec::with_capacity(placements.len());
    let mut pieces: Vec<u32> = Vec::new();
    let mut loads = JobLoads::new(instance.num_jobs());
    for (idx, p) in placements.iter().enumerate() {
        if p.machine >= m {
            violations.push(Violation::MachineOutOfRange { machine: p.machine });
            continue;
        }
        if p.start.is_negative() {
            violations.push(Violation::NegativeStart { machine: p.machine });
        }
        order.push(idx as u32);
        match p.kind {
            ItemKind::Setup(class) => {
                // Deserialized schedules may reference ids the instance does
                // not have; report instead of indexing out of bounds.
                if class >= instance.num_classes() {
                    violations.push(Violation::UnknownClass { class });
                } else if p.len != Rational::from(instance.setup(class)) {
                    violations.push(Violation::WrongSetupLength {
                        machine: p.machine,
                        class,
                        len: p.len,
                    });
                }
            }
            ItemKind::Piece { job, class } => {
                if job >= instance.num_jobs() {
                    violations.push(Violation::UnknownJob { job });
                    continue;
                }
                if instance.job(job).class != class {
                    violations.push(Violation::WrongPieceClass { job, class });
                }
                loads.add(job, p.len, 1);
                pieces.push(idx as u32);
            }
        }
    }

    // 2 + 3. One sort by (machine, start, insertion order), then a linear
    // sweep over machine runs: overlap and setup coverage.
    order.sort_unstable_by(|&a, &b| {
        let (pa, pb) = (&placements[a as usize], &placements[b as usize]);
        (pa.machine, pa.start, a).cmp(&(pb.machine, pb.start, b))
    });
    let mut i = 0;
    while i < order.len() {
        let machine = placements[order[i] as usize].machine;
        let run_end = i + order[i..]
            .iter()
            .position(|&x| placements[x as usize].machine != machine)
            .unwrap_or(order.len() - i);
        sweep_timeline(
            machine,
            order[i..run_end].iter().map(|&x| {
                let p = &placements[x as usize];
                (p.start, p.len, &p.kind)
            }),
            &mut violations,
        );
        i = run_end;
    }

    // 4. Load conservation per job.
    if !loads.check_totals(instance, &mut violations) {
        return violations;
    }

    // 5. Variant rules, on one sort by (job, start).
    match variant {
        Variant::NonPreemptive => {
            for (job, &count) in loads.counts.iter().enumerate() {
                if count > 1 {
                    violations.push(Violation::JobSplit {
                        job,
                        pieces: count as usize,
                    });
                }
            }
        }
        Variant::Preemptive => {
            pieces.sort_unstable_by(|&a, &b| {
                let (pa, pb) = (&placements[a as usize], &placements[b as usize]);
                let (ja, jb) = (job_of(&pa.kind), job_of(&pb.kind));
                (ja, pa.start, a).cmp(&(jb, pb.start, b))
            });
            let mut i = 0;
            while i < pieces.len() {
                let p0 = &placements[pieces[i] as usize];
                let job = job_of(&p0.kind);
                let mut prev_end = p0.end();
                let mut j = i + 1;
                while j < pieces.len() && job_of(&placements[pieces[j] as usize].kind) == job {
                    let p = &placements[pieces[j] as usize];
                    if p.start < prev_end {
                        violations.push(Violation::JobParallel { job, at: p.start });
                        // One report per job, as before.
                        while j < pieces.len()
                            && job_of(&placements[pieces[j] as usize].kind) == job
                        {
                            j += 1;
                        }
                        break;
                    }
                    prev_end = prev_end.max(p.end());
                    j += 1;
                }
                i = j.max(i + 1);
            }
        }
        Variant::Splittable => {}
    }

    violations
}

fn job_of(kind: &ItemKind) -> usize {
    match *kind {
        ItemKind::Piece { job, .. } => job,
        ItemKind::Setup(_) => usize::MAX,
    }
}

/// Checks full feasibility of a [`CompactSchedule`] for `instance` under
/// `variant`, *without expanding it*.
///
/// Timeline checks (overlap, setup coverage) run on one representative
/// machine per *region* — a maximal run of machines covered by the same set
/// of configuration groups (so every group interior and every group boundary
/// is checked exactly once); job totals count group multiplicities exactly.
/// The cost is `O((P' + g) log P')` for `P'` stored items and `g` groups,
/// independent of the machine count and of `total_items`.
///
/// Agreement with the explicit walk: `validate_compact(cs, …)` is empty iff
/// `validate(&cs.expand()?, …)` is empty, and both report the same violation
/// families on malformed input (the compact form reports each family once
/// per group/region where the explicit walk repeats it per machine).
///
/// A job piece in a group of multiplicity `k > 1` denotes `k` parallel
/// pieces: fine for the splittable variant, a [`Violation::JobParallel`] /
/// [`Violation::JobSplit`] under the preemptive / non-preemptive rules —
/// exactly as the expanded schedule would be judged.
#[must_use]
pub fn validate_compact(
    cs: &CompactSchedule,
    instance: &Instance,
    variant: Variant,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let m = instance.machines();
    let groups = cs.groups();

    // 0. Magnitude guard over stored items (cf. `validate` step 0).
    // Non-positive-length items are skipped throughout: expansion drops
    // them (`Schedule::push` keeps only positive lengths), so judging them
    // here would diverge from the explicit walk on the expansion.
    for g in groups {
        for item in &g.config.items {
            if !item.len.is_positive() {
                continue;
            }
            let end_bounded = item.start.checked_add(item.len).is_some_and(bounded);
            if !bounded(item.start) || !bounded(item.len) || !end_bounded {
                return vec![Violation::TimeOverflow];
            }
        }
    }

    // 1. Group bounds (the "width invariant": a group must fit the machine
    // range — the compact analogue of the per-placement machine check) plus
    // id/shape checks, once per stored item.
    let mut in_range: Vec<u32> = Vec::with_capacity(groups.len());
    let mut loads = JobLoads::new(instance.num_jobs());
    for (gi, g) in groups.iter().enumerate() {
        if g.first_machine + g.count > m {
            violations.push(Violation::MachineOutOfRange {
                machine: g.first_machine + g.count - 1,
            });
            continue;
        }
        in_range.push(gi as u32);
        for item in &g.config.items {
            if !item.len.is_positive() {
                continue; // dropped by expansion
            }
            if item.start.is_negative() {
                violations.push(Violation::NegativeStart {
                    machine: g.first_machine,
                });
            }
            match item.kind {
                ItemKind::Setup(class) => {
                    if class >= instance.num_classes() {
                        violations.push(Violation::UnknownClass { class });
                    } else if item.len != Rational::from(instance.setup(class)) {
                        violations.push(Violation::WrongSetupLength {
                            machine: g.first_machine,
                            class,
                            len: item.len,
                        });
                    }
                }
                ItemKind::Piece { job, class } => {
                    if job >= instance.num_jobs() {
                        violations.push(Violation::UnknownJob { job });
                        continue;
                    }
                    if instance.job(job).class != class {
                        violations.push(Violation::WrongPieceClass { job, class });
                    }
                    loads.add(job, item.len, g.count as u64);
                }
            }
        }
    }

    // 2 + 3. Region sweep: the machine axis is sliced at every group
    // boundary; inside one region every machine carries the same merged
    // timeline, so one walk per region stands for all of them (one
    // representative machine per group interior and per group boundary).
    let mut events: Vec<(usize, bool, u32)> = Vec::with_capacity(2 * in_range.len());
    for &gi in &in_range {
        let g = &groups[gi as usize];
        events.push((g.first_machine, false, gi)); // group becomes active
        events.push((g.first_machine + g.count, true, gi)); // group ends
    }
    // At equal positions, ends apply before starts (half-open intervals).
    events.sort_unstable_by_key(|&(pos, is_end, gi)| (pos, !is_end, gi));
    let mut active: Vec<u32> = Vec::new();
    let mut merged: Vec<(Rational, u32, u32)> = Vec::new(); // (start, group, item)
    let mut e = 0;
    while e < events.len() {
        let pos = events[e].0;
        while e < events.len() && events[e].0 == pos {
            let (_, is_end, gi) = events[e];
            if is_end {
                active.retain(|&x| x != gi);
            } else {
                active.push(gi);
            }
            e += 1;
        }
        if active.is_empty() || e >= events.len() {
            continue;
        }
        // Region [pos, events[e].0) — all its machines share this timeline.
        merged.clear();
        for &gi in &active {
            for (ii, item) in groups[gi as usize].config.items.iter().enumerate() {
                if item.len.is_positive() {
                    merged.push((item.start, gi, ii as u32));
                }
            }
        }
        // Equal starts tie-break by (group, item) order — the emission order
        // of the expanded schedule.
        merged.sort_unstable();
        sweep_timeline(
            pos,
            merged.iter().map(|&(_, gi, ii)| {
                let item = &groups[gi as usize].config.items[ii as usize];
                (item.start, item.len, &item.kind)
            }),
            &mut violations,
        );
    }

    // 4. Load conservation per job, multiplicities included.
    if !loads.check_totals(instance, &mut violations) {
        return violations;
    }

    // 5. Variant rules on stored items (a multiplicity-k piece is k pieces).
    match variant {
        Variant::NonPreemptive => {
            for (job, &count) in loads.counts.iter().enumerate() {
                if count > 1 {
                    violations.push(Violation::JobSplit {
                        job,
                        pieces: count as usize,
                    });
                }
            }
        }
        Variant::Preemptive => {
            let mut intervals: Vec<(usize, Rational, Rational)> = Vec::new();
            for &gi in &in_range {
                let g = &groups[gi as usize];
                for item in &g.config.items {
                    if let ItemKind::Piece { job, .. } = item.kind {
                        if job >= instance.num_jobs() || !item.len.is_positive() {
                            continue;
                        }
                        if g.count > 1 {
                            // k parallel copies of the same piece.
                            violations.push(Violation::JobParallel {
                                job,
                                at: item.start,
                            });
                            continue;
                        }
                        intervals.push((job, item.start, item.start + item.len));
                    }
                }
            }
            intervals.sort_unstable();
            let mut i = 0;
            while i < intervals.len() {
                let job = intervals[i].0;
                let mut prev_end = intervals[i].2;
                let mut j = i + 1;
                while j < intervals.len() && intervals[j].0 == job {
                    if intervals[j].1 < prev_end {
                        violations.push(Violation::JobParallel {
                            job,
                            at: intervals[j].1,
                        });
                        while j < intervals.len() && intervals[j].0 == job {
                            j += 1;
                        }
                        break;
                    }
                    prev_end = prev_end.max(intervals[j].2);
                    j += 1;
                }
                i = j.max(i + 1);
            }
        }
        Variant::Splittable => {}
    }

    violations
}

#[cfg(test)]
mod tests {
    use bss_instance::InstanceBuilder;

    use crate::{ConfigItem, MachineConfig};

    use super::*;

    /// m=2; class 0: s=2, jobs {3,4}; class 1: s=1, job {2}.
    fn instance() -> Instance {
        let mut b = InstanceBuilder::new(2);
        b.add_batch(2, &[3, 4]);
        b.add_batch(1, &[2]);
        b.build().unwrap()
    }

    fn r(v: i128) -> Rational {
        Rational::from_int(v)
    }

    /// A feasible non-preemptive schedule for `instance()`.
    fn good() -> Schedule {
        let mut s = Schedule::new(2);
        s.push_setup(0, r(0), r(2), 0);
        s.push_piece(0, r(2), r(3), 0, 0);
        s.push_piece(0, r(5), r(4), 1, 0);
        s.push_setup(1, r(0), r(1), 1);
        s.push_piece(1, r(1), r(2), 2, 1);
        s
    }

    #[test]
    fn accepts_feasible_schedule() {
        for v in Variant::ALL {
            assert!(validate(&good(), &instance(), v).is_empty(), "{v}");
        }
    }

    #[test]
    fn detects_machine_out_of_range() {
        let mut s = good();
        s.push_setup(5, r(0), r(2), 0);
        assert!(validate(&s, &instance(), Variant::Splittable)
            .iter()
            .any(|v| matches!(v, Violation::MachineOutOfRange { machine: 5 })));
    }

    #[test]
    fn detects_unknown_job_and_class() {
        // Ids past the instance's n/c (e.g. from a hand-edited schedule
        // JSON) must surface as violations, not index panics.
        let mut s = good();
        s.push_piece(0, r(20), r(1), 999, 0);
        s.push_setup(1, r(20), r(1), 7);
        let vs = validate(&s, &instance(), Variant::Splittable);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::UnknownJob { job: 999 })));
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::UnknownClass { class: 7 })));
    }

    #[test]
    fn detects_time_overflow_instead_of_panicking() {
        // Huge numerator within wire bounds: start + len overflows the
        // comparison budget; must report, not abort.
        let mut s = good();
        s.push_piece(0, Rational::new(1i128 << 94, 1), r(1), 0, 0);
        assert_eq!(
            validate(&s, &instance(), Variant::Splittable),
            vec![Violation::TimeOverflow]
        );
        // Coprime denominators whose lcm explodes past the bounds in the
        // per-job sum.
        let mut s = good();
        for p in [(1i128 << 31) - 1, (1 << 31) - 99, (1 << 31) - 525] {
            s.push_piece(1, r(30), Rational::new(1, p), 2, 1);
        }
        assert!(validate(&s, &instance(), Variant::Splittable)
            .iter()
            .any(|v| matches!(v, Violation::TimeOverflow)));
    }

    #[test]
    fn detects_negative_start() {
        let mut s = good();
        s.push_piece(1, r(-1), r(1), 2, 1);
        let vs = validate(&s, &instance(), Variant::Splittable);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::NegativeStart { .. })));
    }

    #[test]
    fn detects_overlap() {
        let mut s = good();
        // Intersects the class-0 setup on machine 0.
        s.push_piece(0, r(1), r(1), 2, 1);
        let vs = validate(&s, &instance(), Variant::Splittable);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::Overlap { machine: 0, .. })));
    }

    #[test]
    fn detects_missing_setup() {
        let mut s = Schedule::new(2);
        s.push_piece(0, r(0), r(3), 0, 0); // no setup at all
        s.push_setup(0, r(3), r(2), 0);
        s.push_piece(0, r(5), r(4), 1, 0);
        s.push_setup(1, r(0), r(1), 1);
        s.push_piece(1, r(1), r(2), 2, 1);
        let vs = validate(&s, &instance(), Variant::Splittable);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::MissingSetup { job: 0, .. })));
    }

    #[test]
    fn detects_stale_configuration_after_switch() {
        // class 0 setup, class 1 job (with its setup), then a class 0 job
        // again WITHOUT a fresh class 0 setup: must be flagged.
        let mut b = InstanceBuilder::new(1);
        b.add_batch(1, &[1, 1]);
        b.add_batch(1, &[1]);
        let inst = b.build().unwrap();
        let mut s = Schedule::new(1);
        s.push_setup(0, r(0), r(1), 0);
        s.push_piece(0, r(1), r(1), 0, 0);
        s.push_setup(0, r(2), r(1), 1);
        s.push_piece(0, r(3), r(1), 2, 1);
        s.push_piece(0, r(4), r(1), 1, 0); // stale class-0 configuration
        let vs = validate(&s, &inst, Variant::Splittable);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::MissingSetup { job: 1, .. })));
    }

    #[test]
    fn idle_time_does_not_reset_configuration() {
        let mut b = InstanceBuilder::new(1);
        b.add_batch(1, &[1, 1]);
        let inst = b.build().unwrap();
        let mut s = Schedule::new(1);
        s.push_setup(0, r(0), r(1), 0);
        s.push_piece(0, r(1), r(1), 0, 0);
        // Idle gap [2, 10), then another class-0 job without a new setup: OK.
        s.push_piece(0, r(10), r(1), 1, 0);
        assert!(validate(&s, &inst, Variant::Splittable).is_empty());
    }

    #[test]
    fn detects_wrong_setup_length() {
        let mut s = good();
        s.push_setup(1, r(4), r(5), 1); // s_1 = 1, not 5
        let vs = validate(&s, &instance(), Variant::Splittable);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::WrongSetupLength { class: 1, .. })));
    }

    #[test]
    fn detects_incomplete_job() {
        let mut s = good();
        // Shorten job 1's piece.
        let placements = s.placements_mut();
        let idx = placements
            .iter()
            .position(|p| matches!(p.kind, ItemKind::Piece { job: 1, .. }))
            .unwrap();
        placements[idx].len = r(2);
        let vs = validate(&s, &instance(), Variant::Splittable);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::WrongJobTotal { job: 1, .. })));
    }

    #[test]
    fn detects_wrong_piece_class() {
        let mut s = good();
        let placements = s.placements_mut();
        let idx = placements
            .iter()
            .position(|p| matches!(p.kind, ItemKind::Piece { job: 2, .. }))
            .unwrap();
        placements[idx].kind = ItemKind::Piece { job: 2, class: 0 };
        let vs = validate(&s, &instance(), Variant::Splittable);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::WrongPieceClass { job: 2, class: 0 })));
    }

    /// A preemptive-feasible split of job 1 across both machines.
    fn split_schedule(second_start: Rational) -> Schedule {
        let mut s = Schedule::new(2);
        s.push_setup(0, r(0), r(2), 0);
        s.push_piece(0, r(2), r(3), 0, 0);
        s.push_piece(0, r(5), r(2), 1, 0); // job 1 first half: [5, 7)
        s.push_setup(1, r(0), r(1), 1);
        s.push_piece(1, r(1), r(2), 2, 1);
        s.push_setup(1, r(3), r(2), 0);
        s.push_piece(1, second_start, r(2), 1, 0); // job 1 second half
        s
    }

    #[test]
    fn preemptive_split_ok_when_sequential() {
        let s = split_schedule(r(7)); // [7, 9) after [5, 7)
        assert!(validate(&s, &instance(), Variant::Preemptive).is_empty());
        assert!(validate(&s, &instance(), Variant::Splittable).is_empty());
        // But the non-preemptive validator must reject the split.
        assert!(validate(&s, &instance(), Variant::NonPreemptive)
            .iter()
            .any(|v| matches!(v, Violation::JobSplit { job: 1, pieces: 2 })));
    }

    #[test]
    fn preemptive_rejects_self_parallelism() {
        let s = split_schedule(r(6)); // [6, 8) overlaps [5, 7)
        assert!(validate(&s, &instance(), Variant::Preemptive)
            .iter()
            .any(|v| matches!(v, Violation::JobParallel { job: 1, .. })));
        // Splittable allows it.
        assert!(validate(&s, &instance(), Variant::Splittable).is_empty());
    }

    #[test]
    fn missing_job_detected() {
        let mut s = good();
        s.placements_mut()
            .retain(|p| !matches!(p.kind, ItemKind::Piece { job: 2, .. }));
        let vs = validate(&s, &instance(), Variant::Splittable);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::WrongJobTotal { job: 2, .. })));
    }

    #[test]
    fn touching_placements_do_not_overlap() {
        // Back-to-back placements sharing an endpoint are fine.
        let vs = validate(&good(), &instance(), Variant::Splittable);
        assert!(vs.is_empty());
    }

    // ---- validate_compact ----

    fn citem(kind: ItemKind, start: i128, len: i128) -> ConfigItem {
        ConfigItem {
            start: r(start),
            len: r(len),
            kind,
        }
    }

    /// A feasible compact schedule for `instance()`: class 0 wholly on
    /// machine 0, class 1 on machine 1.
    fn good_compact() -> CompactSchedule {
        let mut cs = CompactSchedule::new(2);
        cs.push_group(
            0,
            1,
            MachineConfig {
                items: vec![
                    citem(ItemKind::Setup(0), 0, 2),
                    citem(ItemKind::Piece { job: 0, class: 0 }, 2, 3),
                    citem(ItemKind::Piece { job: 1, class: 0 }, 5, 4),
                ],
            },
        );
        cs.push_group(
            1,
            1,
            MachineConfig {
                items: vec![
                    citem(ItemKind::Setup(1), 0, 1),
                    citem(ItemKind::Piece { job: 2, class: 1 }, 1, 2),
                ],
            },
        );
        cs
    }

    #[test]
    fn compact_accepts_feasible_schedule() {
        for v in Variant::ALL {
            assert!(
                validate_compact(&good_compact(), &instance(), v).is_empty(),
                "{v}"
            );
        }
    }

    #[test]
    fn compact_agrees_with_explicit_on_good_schedule() {
        let cs = good_compact();
        let s = cs.expand().expect("in range");
        for v in Variant::ALL {
            assert_eq!(
                validate_compact(&cs, &instance(), v).is_empty(),
                validate(&s, &instance(), v).is_empty()
            );
        }
    }

    #[test]
    fn compact_detects_out_of_range_group() {
        let mut cs = good_compact();
        cs.push_group(
            1,
            2, // machines {1, 2} but m = 2
            MachineConfig {
                items: vec![citem(ItemKind::Setup(0), 10, 2)],
            },
        );
        assert!(validate_compact(&cs, &instance(), Variant::Splittable)
            .iter()
            .any(|v| matches!(v, Violation::MachineOutOfRange { machine: 2 })));
    }

    #[test]
    fn compact_counts_multiplicities_in_job_totals() {
        // Job 0 (t = 3) placed once per machine on 2 machines: total 6 ≠ 3.
        let mut cs = CompactSchedule::new(2);
        cs.push_group(
            0,
            2,
            MachineConfig {
                items: vec![
                    citem(ItemKind::Setup(0), 0, 2),
                    citem(ItemKind::Piece { job: 0, class: 0 }, 2, 3),
                ],
            },
        );
        let vs = validate_compact(&cs, &instance(), Variant::Splittable);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::WrongJobTotal { job: 0, .. })));
    }

    #[test]
    fn compact_checks_shared_machine_regions() {
        // Two groups sharing machine 0 with overlapping items: the explicit
        // expansion overlaps, and the region sweep must see the merged
        // timeline.
        let mut cs = good_compact();
        cs.push_group(
            0,
            1,
            MachineConfig {
                items: vec![citem(ItemKind::Setup(1), 1, 1)],
            },
        );
        let vs = validate_compact(&cs, &instance(), Variant::Splittable);
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::Overlap { machine: 0, .. })),
            "{vs:?}"
        );
    }

    #[test]
    fn compact_multiplicity_pieces_are_parallel_and_split() {
        // One piece of job 2 (t = 2) over 2 machines, 1 unit each: totals
        // conserve, but the copies run in parallel.
        let mut cs = CompactSchedule::new(2);
        cs.push_group(
            0,
            2,
            MachineConfig {
                items: vec![
                    citem(ItemKind::Setup(1), 0, 1),
                    citem(ItemKind::Piece { job: 2, class: 1 }, 1, 1),
                ],
            },
        );
        // Jobs 0 and 1 are missing entirely — ignore their totals here.
        let parallel = validate_compact(&cs, &instance(), Variant::Preemptive);
        assert!(parallel
            .iter()
            .any(|v| matches!(v, Violation::JobParallel { job: 2, .. })));
        let split = validate_compact(&cs, &instance(), Variant::NonPreemptive);
        assert!(split
            .iter()
            .any(|v| matches!(v, Violation::JobSplit { job: 2, .. })));
        assert!(!validate_compact(&cs, &instance(), Variant::Splittable)
            .iter()
            .any(|v| matches!(
                v,
                Violation::JobParallel { .. } | Violation::JobSplit { .. }
            )));
    }

    #[test]
    fn compact_ignores_non_positive_lengths_like_expansion() {
        // Expansion drops non-positive-length items (`Schedule::push`);
        // the compact validator must judge the same effective schedule —
        // in particular a negative-length piece must not silently cancel
        // out a job's surplus.
        let mut cs = good_compact();
        cs.push_group(
            0,
            1,
            MachineConfig {
                items: vec![
                    citem(ItemKind::Piece { job: 0, class: 0 }, 30, -1),
                    citem(ItemKind::Setup(0), 40, 2),
                    citem(ItemKind::Piece { job: 0, class: 0 }, 42, 1),
                ],
            },
        );
        let compact_vs = validate_compact(&cs, &instance(), Variant::Splittable);
        let explicit_vs = validate(
            &cs.expand().expect("in range"),
            &instance(),
            Variant::Splittable,
        );
        // Both see job 0 over-scheduled by exactly the +1 piece.
        assert!(compact_vs
            .iter()
            .any(|v| matches!(v, Violation::WrongJobTotal { job: 0, .. })));
        assert_eq!(compact_vs.is_empty(), explicit_vs.is_empty());
        // A zero/negative-length-only group changes nothing for either.
        let mut cs = good_compact();
        cs.push_group(
            1,
            1,
            MachineConfig {
                items: vec![citem(ItemKind::Piece { job: 2, class: 1 }, 0, 0)],
            },
        );
        assert!(validate_compact(&cs, &instance(), Variant::Splittable).is_empty());
        assert!(validate(
            &cs.expand().expect("in range"),
            &instance(),
            Variant::Splittable
        )
        .is_empty());
    }

    #[test]
    fn compact_reports_overflow() {
        let mut cs = good_compact();
        cs.push_group(
            0,
            1,
            MachineConfig {
                items: vec![citem(ItemKind::Piece { job: 0, class: 0 }, 0, 0)]
                    .into_iter()
                    .map(|mut it| {
                        it.start = Rational::new(1i128 << 94, 1);
                        it.len = r(1);
                        it
                    })
                    .collect(),
            },
        );
        assert_eq!(
            validate_compact(&cs, &instance(), Variant::Splittable),
            vec![Violation::TimeOverflow]
        );
    }
}
