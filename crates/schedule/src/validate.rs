//! Feasibility validation of explicit schedules.
//!
//! The checks implement the paper's model requirements verbatim:
//!
//! 1. every placement lies on a real machine, starts at time `>= 0`;
//! 2. machines are single-threaded: no two placements on one machine overlap;
//! 3. a setup `s_i` (of full length `s_i`) separates load of class `i` from
//!    anything a machine did before — walking each machine's timeline, every
//!    job piece must be preceded by a setup of its class with no
//!    different-class item in between (idle time is allowed: a machine stays
//!    configured while idle);
//! 4. every job is fully scheduled: its pieces sum to exactly `t_j`;
//! 5. variant rules: non-preemptive jobs are a single piece; preemptive jobs
//!    never overlap themselves across machines; splittable jobs are free.
//!
//! Setups are un-preempted by construction (a placement is contiguous), and
//! check 2 ensures nothing intersects them.

use bss_instance::{Instance, Variant};
use bss_rational::Rational;

use crate::{ItemKind, Schedule};

/// A feasibility violation, with enough context to debug the offending
/// algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Placement on machine `>= m`.
    MachineOutOfRange { machine: usize },
    /// A piece of a job the instance does not have (`job >= n`).
    UnknownJob { job: usize },
    /// A setup of a class the instance does not have (`class >= c`).
    UnknownClass { class: usize },
    /// Times too large for exact arithmetic (only reachable from hand-crafted
    /// schedules; every feasible schedule's times are far below the bounds).
    TimeOverflow,
    /// Placement starting before time 0.
    NegativeStart { machine: usize },
    /// Two placements on one machine intersect.
    Overlap { machine: usize, at: Rational },
    /// A job piece not covered by a setup of its class.
    MissingSetup {
        machine: usize,
        job: usize,
        class: usize,
    },
    /// A setup placement whose length differs from `s_i`.
    WrongSetupLength {
        machine: usize,
        class: usize,
        len: Rational,
    },
    /// A job piece referencing the wrong class.
    WrongPieceClass { job: usize, class: usize },
    /// Job's scheduled time differs from `t_j`.
    WrongJobTotal { job: usize, scheduled: Rational },
    /// Non-preemptive job split into several pieces.
    JobSplit { job: usize, pieces: usize },
    /// Preemptive job running on two machines at once.
    JobParallel { job: usize, at: Rational },
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Violation::MachineOutOfRange { machine } => {
                write!(f, "placement on non-existent machine {machine}")
            }
            Violation::UnknownJob { job } => {
                write!(f, "placement references non-existent job {job}")
            }
            Violation::UnknownClass { class } => {
                write!(f, "setup references non-existent class {class}")
            }
            Violation::TimeOverflow => {
                write!(f, "schedule times overflow exact arithmetic")
            }
            Violation::NegativeStart { machine } => {
                write!(f, "placement on machine {machine} starts before time 0")
            }
            Violation::Overlap { machine, at } => {
                write!(f, "overlapping placements on machine {machine} at {at}")
            }
            Violation::MissingSetup {
                machine,
                job,
                class,
            } => write!(
                f,
                "job {job} (class {class}) on machine {machine} runs without its setup"
            ),
            Violation::WrongSetupLength {
                machine,
                class,
                len,
            } => write!(
                f,
                "setup of class {class} on machine {machine} has length {len}"
            ),
            Violation::WrongPieceClass { job, class } => {
                write!(f, "piece of job {job} labeled with wrong class {class}")
            }
            Violation::WrongJobTotal { job, scheduled } => {
                write!(f, "job {job} scheduled for {scheduled} time units")
            }
            Violation::JobSplit { job, pieces } => {
                write!(f, "non-preemptive job {job} split into {pieces} pieces")
            }
            Violation::JobParallel { job, at } => {
                write!(
                    f,
                    "preemptive job {job} runs in parallel with itself at {at}"
                )
            }
        }
    }
}

/// `true` iff `r` is small enough that any pairwise comparison or single
/// addition with another bounded rational stays inside `i128` (matches the
/// JSON wire-format bounds `Rational::MAX_WIRE_NUM`/`MAX_WIRE_DEN`).
fn bounded(r: Rational) -> bool {
    (-Rational::MAX_WIRE_NUM..=Rational::MAX_WIRE_NUM).contains(&r.numer())
        && r.denom() <= Rational::MAX_WIRE_DEN
}

/// Sum that reports `None` instead of panicking when a hand-crafted schedule
/// drives the exact arithmetic out of range (e.g. coprime denominators whose
/// lcm explodes).
fn bounded_sum(values: impl Iterator<Item = Rational>) -> Option<Rational> {
    let mut acc = Rational::ZERO;
    for v in values {
        acc = acc.checked_add(v).filter(|&s| bounded(s))?;
    }
    Some(acc)
}

/// Checks full feasibility of `schedule` for `instance` under `variant`.
///
/// Returns all violations found (empty = feasible).
#[must_use]
pub fn validate(schedule: &Schedule, instance: &Instance, variant: Variant) -> Vec<Violation> {
    let mut violations = Vec::new();
    let m = instance.machines();

    // 0. Magnitude guard: all later arithmetic (cross-multiplied comparisons,
    // `start + len`) is exact and panics on i128 overflow, so reject times
    // outside the wire-format bounds up front. Feasible schedules sit many
    // orders of magnitude below the bounds.
    for p in schedule.placements() {
        let end_bounded = p.start.checked_add(p.len).is_some_and(|end| bounded(end));
        if !bounded(p.start) || !bounded(p.len) || !end_bounded {
            return vec![Violation::TimeOverflow];
        }
    }

    // 1. Range checks + bucket placements per machine and per job.
    let mut per_machine: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut per_job: Vec<Vec<usize>> = vec![Vec::new(); instance.num_jobs()];
    for (idx, p) in schedule.placements().iter().enumerate() {
        if p.machine >= m {
            violations.push(Violation::MachineOutOfRange { machine: p.machine });
            continue;
        }
        if p.start.is_negative() {
            violations.push(Violation::NegativeStart { machine: p.machine });
        }
        per_machine[p.machine].push(idx);
        match p.kind {
            ItemKind::Setup(class) => {
                // Deserialized schedules may reference ids the instance does
                // not have; report instead of indexing out of bounds.
                if class >= instance.num_classes() {
                    violations.push(Violation::UnknownClass { class });
                } else if p.len != Rational::from(instance.setup(class)) {
                    violations.push(Violation::WrongSetupLength {
                        machine: p.machine,
                        class,
                        len: p.len,
                    });
                }
            }
            ItemKind::Piece { job, class } => {
                if job >= instance.num_jobs() {
                    violations.push(Violation::UnknownJob { job });
                    continue;
                }
                if instance.job(job).class != class {
                    violations.push(Violation::WrongPieceClass { job, class });
                }
                per_job[job].push(idx);
            }
        }
    }

    // 2 + 3. Per machine: overlap and setup coverage.
    let placements = schedule.placements();
    for (machine, idxs) in per_machine.iter_mut().enumerate() {
        idxs.sort_by(|&a, &b| placements[a].start.cmp(&placements[b].start));
        let mut prev_end = Rational::ZERO;
        let mut first = true;
        let mut configured: Option<usize> = None;
        for &idx in idxs.iter() {
            let p = &placements[idx];
            if !first && p.start < prev_end {
                violations.push(Violation::Overlap {
                    machine,
                    at: p.start,
                });
            }
            prev_end = prev_end.max(p.end());
            first = false;
            match p.kind {
                ItemKind::Setup(class) => configured = Some(class),
                ItemKind::Piece { job, class } => {
                    if configured != Some(class) {
                        violations.push(Violation::MissingSetup {
                            machine,
                            job,
                            class,
                        });
                        // Avoid cascading reports for the same run.
                        configured = Some(class);
                    }
                }
            }
        }
    }

    // 4. Load conservation per job.
    for (job, idxs) in per_job.iter().enumerate() {
        let Some(scheduled) = bounded_sum(idxs.iter().map(|&i| placements[i].len)) else {
            violations.push(Violation::TimeOverflow);
            return violations;
        };
        if scheduled != Rational::from(instance.job(job).time) {
            violations.push(Violation::WrongJobTotal { job, scheduled });
        }
    }

    // 5. Variant rules.
    match variant {
        Variant::NonPreemptive => {
            for (job, idxs) in per_job.iter().enumerate() {
                if idxs.len() > 1 {
                    violations.push(Violation::JobSplit {
                        job,
                        pieces: idxs.len(),
                    });
                }
            }
        }
        Variant::Preemptive => {
            for (job, idxs) in per_job.iter().enumerate() {
                let mut intervals: Vec<(Rational, Rational)> = idxs
                    .iter()
                    .map(|&i| (placements[i].start, placements[i].end()))
                    .collect();
                intervals.sort();
                for w in intervals.windows(2) {
                    if w[1].0 < w[0].1 {
                        violations.push(Violation::JobParallel { job, at: w[1].0 });
                        break;
                    }
                }
            }
        }
        Variant::Splittable => {}
    }

    violations
}

#[cfg(test)]
mod tests {
    use bss_instance::InstanceBuilder;

    use super::*;

    /// m=2; class 0: s=2, jobs {3,4}; class 1: s=1, job {2}.
    fn instance() -> Instance {
        let mut b = InstanceBuilder::new(2);
        b.add_batch(2, &[3, 4]);
        b.add_batch(1, &[2]);
        b.build().unwrap()
    }

    fn r(v: i128) -> Rational {
        Rational::from_int(v)
    }

    /// A feasible non-preemptive schedule for `instance()`.
    fn good() -> Schedule {
        let mut s = Schedule::new(2);
        s.push_setup(0, r(0), r(2), 0);
        s.push_piece(0, r(2), r(3), 0, 0);
        s.push_piece(0, r(5), r(4), 1, 0);
        s.push_setup(1, r(0), r(1), 1);
        s.push_piece(1, r(1), r(2), 2, 1);
        s
    }

    #[test]
    fn accepts_feasible_schedule() {
        for v in Variant::ALL {
            assert!(validate(&good(), &instance(), v).is_empty(), "{v}");
        }
    }

    #[test]
    fn detects_machine_out_of_range() {
        let mut s = good();
        s.push_setup(5, r(0), r(2), 0);
        assert!(validate(&s, &instance(), Variant::Splittable)
            .iter()
            .any(|v| matches!(v, Violation::MachineOutOfRange { machine: 5 })));
    }

    #[test]
    fn detects_unknown_job_and_class() {
        // Ids past the instance's n/c (e.g. from a hand-edited schedule
        // JSON) must surface as violations, not index panics.
        let mut s = good();
        s.push_piece(0, r(20), r(1), 999, 0);
        s.push_setup(1, r(20), r(1), 7);
        let vs = validate(&s, &instance(), Variant::Splittable);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::UnknownJob { job: 999 })));
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::UnknownClass { class: 7 })));
    }

    #[test]
    fn detects_time_overflow_instead_of_panicking() {
        // Huge numerator within wire bounds: start + len overflows the
        // comparison budget; must report, not abort.
        let mut s = good();
        s.push_piece(0, Rational::new(1i128 << 94, 1), r(1), 0, 0);
        assert_eq!(
            validate(&s, &instance(), Variant::Splittable),
            vec![Violation::TimeOverflow]
        );
        // Coprime denominators whose lcm explodes past the bounds in the
        // per-job sum.
        let mut s = good();
        for p in [(1i128 << 31) - 1, (1 << 31) - 99, (1 << 31) - 525] {
            s.push_piece(1, r(30), Rational::new(1, p), 2, 1);
        }
        assert!(validate(&s, &instance(), Variant::Splittable)
            .iter()
            .any(|v| matches!(v, Violation::TimeOverflow)));
    }

    #[test]
    fn detects_negative_start() {
        let mut s = good();
        s.push_piece(1, r(-1), r(1), 2, 1);
        let vs = validate(&s, &instance(), Variant::Splittable);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::NegativeStart { .. })));
    }

    #[test]
    fn detects_overlap() {
        let mut s = good();
        // Intersects the class-0 setup on machine 0.
        s.push_piece(0, r(1), r(1), 2, 1);
        let vs = validate(&s, &instance(), Variant::Splittable);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::Overlap { machine: 0, .. })));
    }

    #[test]
    fn detects_missing_setup() {
        let mut s = Schedule::new(2);
        s.push_piece(0, r(0), r(3), 0, 0); // no setup at all
        s.push_setup(0, r(3), r(2), 0);
        s.push_piece(0, r(5), r(4), 1, 0);
        s.push_setup(1, r(0), r(1), 1);
        s.push_piece(1, r(1), r(2), 2, 1);
        let vs = validate(&s, &instance(), Variant::Splittable);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::MissingSetup { job: 0, .. })));
    }

    #[test]
    fn detects_stale_configuration_after_switch() {
        // class 0 setup, class 1 job (with its setup), then a class 0 job
        // again WITHOUT a fresh class 0 setup: must be flagged.
        let mut b = InstanceBuilder::new(1);
        b.add_batch(1, &[1, 1]);
        b.add_batch(1, &[1]);
        let inst = b.build().unwrap();
        let mut s = Schedule::new(1);
        s.push_setup(0, r(0), r(1), 0);
        s.push_piece(0, r(1), r(1), 0, 0);
        s.push_setup(0, r(2), r(1), 1);
        s.push_piece(0, r(3), r(1), 2, 1);
        s.push_piece(0, r(4), r(1), 1, 0); // stale class-0 configuration
        let vs = validate(&s, &inst, Variant::Splittable);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::MissingSetup { job: 1, .. })));
    }

    #[test]
    fn idle_time_does_not_reset_configuration() {
        let mut b = InstanceBuilder::new(1);
        b.add_batch(1, &[1, 1]);
        let inst = b.build().unwrap();
        let mut s = Schedule::new(1);
        s.push_setup(0, r(0), r(1), 0);
        s.push_piece(0, r(1), r(1), 0, 0);
        // Idle gap [2, 10), then another class-0 job without a new setup: OK.
        s.push_piece(0, r(10), r(1), 1, 0);
        assert!(validate(&s, &inst, Variant::Splittable).is_empty());
    }

    #[test]
    fn detects_wrong_setup_length() {
        let mut s = good();
        s.push_setup(1, r(4), r(5), 1); // s_1 = 1, not 5
        let vs = validate(&s, &instance(), Variant::Splittable);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::WrongSetupLength { class: 1, .. })));
    }

    #[test]
    fn detects_incomplete_job() {
        let mut s = good();
        // Shorten job 1's piece.
        let placements = s.placements_mut();
        let idx = placements
            .iter()
            .position(|p| matches!(p.kind, ItemKind::Piece { job: 1, .. }))
            .unwrap();
        placements[idx].len = r(2);
        let vs = validate(&s, &instance(), Variant::Splittable);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::WrongJobTotal { job: 1, .. })));
    }

    #[test]
    fn detects_wrong_piece_class() {
        let mut s = good();
        let placements = s.placements_mut();
        let idx = placements
            .iter()
            .position(|p| matches!(p.kind, ItemKind::Piece { job: 2, .. }))
            .unwrap();
        placements[idx].kind = ItemKind::Piece { job: 2, class: 0 };
        let vs = validate(&s, &instance(), Variant::Splittable);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::WrongPieceClass { job: 2, class: 0 })));
    }

    /// A preemptive-feasible split of job 1 across both machines.
    fn split_schedule(second_start: Rational) -> Schedule {
        let mut s = Schedule::new(2);
        s.push_setup(0, r(0), r(2), 0);
        s.push_piece(0, r(2), r(3), 0, 0);
        s.push_piece(0, r(5), r(2), 1, 0); // job 1 first half: [5, 7)
        s.push_setup(1, r(0), r(1), 1);
        s.push_piece(1, r(1), r(2), 2, 1);
        s.push_setup(1, r(3), r(2), 0);
        s.push_piece(1, second_start, r(2), 1, 0); // job 1 second half
        s
    }

    #[test]
    fn preemptive_split_ok_when_sequential() {
        let s = split_schedule(r(7)); // [7, 9) after [5, 7)
        assert!(validate(&s, &instance(), Variant::Preemptive).is_empty());
        assert!(validate(&s, &instance(), Variant::Splittable).is_empty());
        // But the non-preemptive validator must reject the split.
        assert!(validate(&s, &instance(), Variant::NonPreemptive)
            .iter()
            .any(|v| matches!(v, Violation::JobSplit { job: 1, pieces: 2 })));
    }

    #[test]
    fn preemptive_rejects_self_parallelism() {
        let s = split_schedule(r(6)); // [6, 8) overlaps [5, 7)
        assert!(validate(&s, &instance(), Variant::Preemptive)
            .iter()
            .any(|v| matches!(v, Violation::JobParallel { job: 1, .. })));
        // Splittable allows it.
        assert!(validate(&s, &instance(), Variant::Splittable).is_empty());
    }

    #[test]
    fn missing_job_detected() {
        let mut s = good();
        s.placements_mut()
            .retain(|p| !matches!(p.kind, ItemKind::Piece { job: 2, .. }));
        let vs = validate(&s, &instance(), Variant::Splittable);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::WrongJobTotal { job: 2, .. })));
    }

    #[test]
    fn touching_placements_do_not_overlap() {
        // Back-to-back placements sharing an endpoint are fine.
        let vs = validate(&good(), &instance(), Variant::Splittable);
        assert!(vs.is_empty());
    }
}
