//! Configuration-based schedules with multiplicities.
//!
//! The splittable algorithms of the paper run in time *sublinear in `m`*
//! (`O(n + c log(c+m))`), which is impossible if the output writes every
//! machine explicitly. Following the paper's remark that "a schedule may
//! consist of machine configurations with associated multiplicities", a
//! [`CompactSchedule`] is a list of configuration groups; a group places one
//! configuration on `count` consecutive machines starting at `first_machine`.
//! Several groups may target the same machine (e.g. the splittable 3/2-dual
//! first fills a class's last machine, then *tops it up* with cheap load in a
//! second pass); feasibility of the combined timeline is checked either
//! directly on the groups ([`crate::validate_compact`]) or after
//! [`CompactSchedule::expand`]. [`CompactSchedule::expand_into`] streams the
//! explicit placements into any [`PlacementSink`] without an intermediate
//! copy.

use bss_instance::JobId;
use bss_json::{FromJson, JsonError, ToJson, Value};
use bss_rational::Rational;

use crate::{ItemKind, Placement, PlacementSink, Schedule, Violation};

/// One item inside a machine configuration (machine-relative, no machine id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigItem {
    /// Start time on the machine.
    pub start: Rational,
    /// Duration.
    pub len: Rational,
    /// Setup or job piece.
    pub kind: ItemKind,
}

impl ToJson for ConfigItem {
    fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("start".into(), self.start.to_json_value()),
            ("len".into(), self.len.to_json_value()),
            ("kind".into(), self.kind.to_json_value()),
        ])
    }
}

impl FromJson for ConfigItem {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(ConfigItem {
            start: Rational::from_json_value(bss_json::required(value, "start")?)?,
            len: Rational::from_json_value(bss_json::required(value, "len")?)?,
            kind: ItemKind::from_json_value(bss_json::required(value, "kind")?)?,
        })
    }
}

/// A machine configuration: (part of) the timeline of one machine.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MachineConfig {
    /// Items on this machine (in placement order).
    pub items: Vec<ConfigItem>,
}

impl MachineConfig {
    /// Total busy time of the configuration.
    #[must_use]
    pub fn load(&self) -> Rational {
        self.items
            .iter()
            .map(|i| i.len)
            .fold(Rational::ZERO, |a, b| a + b)
    }

    /// Largest end time of the configuration (0 if empty).
    #[must_use]
    pub fn end(&self) -> Rational {
        self.items
            .iter()
            .map(|i| i.start + i.len)
            .max()
            .unwrap_or(Rational::ZERO)
    }
}

impl ToJson for MachineConfig {
    fn to_json_value(&self) -> Value {
        Value::Object(vec![("items".into(), self.items.to_json_value())])
    }
}

impl FromJson for MachineConfig {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(MachineConfig {
            items: Vec::from_json_value(bss_json::required(value, "items")?)?,
        })
    }
}

/// A configuration group: `config` repeated on machines
/// `first_machine .. first_machine + count`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigGroup {
    /// First machine of the group.
    pub first_machine: usize,
    /// Number of consecutive machines.
    pub count: usize,
    /// The shared configuration.
    pub config: MachineConfig,
}

impl ToJson for ConfigGroup {
    fn to_json_value(&self) -> Value {
        Value::Object(vec![
            (
                "first_machine".into(),
                Value::Int(self.first_machine as i128),
            ),
            ("count".into(), Value::Int(self.count as i128)),
            ("config".into(), self.config.to_json_value()),
        ])
    }
}

impl FromJson for ConfigGroup {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(ConfigGroup {
            first_machine: bss_json::int_from(
                bss_json::required(value, "first_machine")?,
                "first_machine",
            )?,
            count: bss_json::int_from(bss_json::required(value, "count")?, "count")?,
            config: MachineConfig::from_json_value(bss_json::required(value, "config")?)?,
        })
    }
}

/// A schedule stored as configuration groups with multiplicities.
///
/// A job piece appearing in a configuration of multiplicity `k` denotes `k`
/// *distinct* pieces of that job, one per machine — meaningful only for the
/// splittable variant, where job pieces may run in parallel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactSchedule {
    machines: usize,
    groups: Vec<ConfigGroup>,
}

impl ToJson for CompactSchedule {
    fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("machines".into(), Value::Int(self.machines as i128)),
            ("groups".into(), self.groups.to_json_value()),
        ])
    }
}

impl FromJson for CompactSchedule {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(CompactSchedule {
            machines: bss_json::int_from(bss_json::required(value, "machines")?, "machines")?,
            groups: Vec::from_json_value(bss_json::required(value, "groups")?)?,
        })
    }
}

impl CompactSchedule {
    /// An empty compact schedule on `machines` machines.
    #[must_use]
    pub fn new(machines: usize) -> Self {
        CompactSchedule {
            machines,
            groups: Vec::new(),
        }
    }

    /// Clears the schedule for reuse on `machines` machines, keeping the
    /// group buffer's capacity.
    pub fn reset(&mut self, machines: usize) {
        self.machines = machines;
        self.groups.clear();
    }

    /// Number of machines of the instance.
    #[must_use]
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Appends a configuration group (ignored if `count == 0` or the config is
    /// empty).
    pub fn push_group(&mut self, first_machine: usize, count: usize, config: MachineConfig) {
        if count > 0 && !config.items.is_empty() {
            self.groups.push(ConfigGroup {
                first_machine,
                count,
                config,
            });
        }
    }

    /// The configuration groups.
    #[must_use]
    pub fn groups(&self) -> &[ConfigGroup] {
        &self.groups
    }

    /// Streaming group builder: opens an empty group whose items arrive via
    /// [`CompactSchedule::push_open_item`]. Close it with
    /// [`CompactSchedule::end_group`] before reading [`CompactSchedule::groups`]
    /// — an open group that never received an item would otherwise linger
    /// empty. Building in place keeps every allocation inside the output
    /// (the wrap emitters rely on this for the zero-copy pipeline).
    pub fn begin_group(&mut self, first_machine: usize, count: usize) {
        self.groups.push(ConfigGroup {
            first_machine,
            count,
            config: MachineConfig::default(),
        });
    }

    /// Appends an item to the group opened by [`CompactSchedule::begin_group`].
    ///
    /// # Panics
    /// Panics when no group is open (programming error in the emitter).
    pub fn push_open_item(&mut self, item: ConfigItem) {
        self.groups
            .last_mut()
            .expect("push_open_item requires an open group")
            .config
            .items
            .push(item);
    }

    /// Closes the group opened by [`CompactSchedule::begin_group`], dropping
    /// it when it stayed empty (mirroring [`CompactSchedule::push_group`]).
    pub fn end_group(&mut self) {
        if matches!(
            self.groups.last(),
            Some(g) if g.count == 0 || g.config.items.is_empty()
        ) {
            self.groups.pop();
        }
    }

    /// Total number of `(item, machine)` incidences; `expand` cost is
    /// proportional to this plus `m`.
    #[must_use]
    pub fn total_items(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.config.items.len() * g.count)
            .sum()
    }

    /// Compact size: number of stored items over all groups (what the
    /// near-linear algorithms actually write).
    #[must_use]
    pub fn stored_items(&self) -> usize {
        self.groups.iter().map(|g| g.config.items.len()).sum()
    }

    /// Makespan over all groups.
    #[must_use]
    pub fn makespan(&self) -> Rational {
        self.groups
            .iter()
            .map(|g| g.config.end())
            .max()
            .unwrap_or(Rational::ZERO)
    }

    /// Total processing time assigned to job `job`, counting multiplicities.
    #[must_use]
    pub fn job_assigned(&self, job: JobId) -> Rational {
        let mut total = Rational::ZERO;
        for g in &self.groups {
            for item in &g.config.items {
                if let ItemKind::Piece { job: j, .. } = item.kind {
                    if j == job {
                        total += item.len * g.count;
                    }
                }
            }
        }
        total
    }

    /// Streams the explicit placements into `sink`, once, in group order —
    /// the single-copy replacement for the old expand-then-`absorb` pattern.
    /// Runs in `O(total_items + m)`.
    ///
    /// # Errors
    /// [`Violation::MachineOutOfRange`] when a group extends past the last
    /// machine (e.g. a hand-edited or deserialized schedule); placements
    /// emitted before the offending group remain in `sink`.
    pub fn expand_into<S: PlacementSink>(&self, sink: &mut S) -> Result<(), Violation> {
        for g in &self.groups {
            if g.first_machine + g.count > self.machines {
                return Err(Violation::MachineOutOfRange {
                    machine: g.first_machine + g.count - 1,
                });
            }
            for k in 0..g.count {
                for item in &g.config.items {
                    sink.place(Placement::new(
                        g.first_machine + k,
                        item.start,
                        item.len,
                        item.kind,
                    ));
                }
            }
        }
        Ok(())
    }

    /// Materializes the explicit schedule. Runs in `O(total_items + m)`.
    ///
    /// # Errors
    /// [`Violation::MachineOutOfRange`] when a group extends past the last
    /// machine — malformed input is reported, never aborted on.
    pub fn expand(&self) -> Result<Schedule, Violation> {
        let mut schedule = Schedule::new(self.machines);
        self.expand_into(&mut schedule)?;
        Ok(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn piece(job: JobId, start: i128, len: i128) -> ConfigItem {
        ConfigItem {
            start: Rational::from_int(start),
            len: Rational::from_int(len),
            kind: ItemKind::Piece { job, class: 0 },
        }
    }

    fn setup(class: usize, start: i128, len: i128) -> ConfigItem {
        ConfigItem {
            start: Rational::from_int(start),
            len: Rational::from_int(len),
            kind: ItemKind::Setup(class),
        }
    }

    #[test]
    fn expand_respects_explicit_machines() {
        let mut cs = CompactSchedule::new(5);
        cs.push_group(
            1,
            2,
            MachineConfig {
                items: vec![setup(0, 0, 1), piece(0, 1, 3)],
            },
        );
        cs.push_group(
            4,
            1,
            MachineConfig {
                items: vec![setup(1, 0, 2)],
            },
        );
        let s = cs.expand().expect("in range");
        assert_eq!(s.machine_load(0), Rational::ZERO);
        assert_eq!(s.machine_load(1), Rational::from(4u64));
        assert_eq!(s.machine_load(2), Rational::from(4u64));
        assert_eq!(s.machine_load(3), Rational::ZERO);
        assert_eq!(s.machine_load(4), Rational::from(2u64));
        assert_eq!(cs.makespan(), s.makespan());
        assert_eq!(cs.total_items(), 5);
        assert_eq!(cs.stored_items(), 3);
    }

    #[test]
    fn groups_may_share_a_machine() {
        let mut cs = CompactSchedule::new(1);
        cs.push_group(
            0,
            1,
            MachineConfig {
                items: vec![setup(0, 0, 1)],
            },
        );
        cs.push_group(
            0,
            1,
            MachineConfig {
                items: vec![piece(0, 1, 2)],
            },
        );
        let s = cs.expand().expect("in range");
        assert_eq!(s.machine_load(0), Rational::from(3u64));
    }

    #[test]
    fn job_assigned_counts_multiplicity() {
        let mut cs = CompactSchedule::new(4);
        cs.push_group(
            0,
            3,
            MachineConfig {
                items: vec![piece(7, 0, 3)],
            },
        );
        assert_eq!(cs.job_assigned(7), Rational::from(9u64));
        assert_eq!(cs.job_assigned(8), Rational::ZERO);
    }

    #[test]
    fn expand_reports_out_of_range_group() {
        let mut cs = CompactSchedule::new(1);
        cs.push_group(
            1,
            1,
            MachineConfig {
                items: vec![setup(0, 0, 1)],
            },
        );
        assert_eq!(
            cs.expand().unwrap_err(),
            Violation::MachineOutOfRange { machine: 1 }
        );
        let mut sink = Schedule::new(1);
        assert!(cs.expand_into(&mut sink).is_err());
    }

    #[test]
    fn expand_into_matches_expand() {
        let mut cs = CompactSchedule::new(4);
        cs.push_group(
            0,
            3,
            MachineConfig {
                items: vec![setup(0, 0, 1), piece(0, 1, 2)],
            },
        );
        cs.push_group(
            3,
            1,
            MachineConfig {
                items: vec![setup(1, 0, 2)],
            },
        );
        let mut streamed = Schedule::new(4);
        cs.expand_into(&mut streamed).expect("in range");
        assert_eq!(streamed, cs.expand().expect("in range"));
    }

    #[test]
    fn reset_keeps_capacity_and_clears_groups() {
        let mut cs = CompactSchedule::new(2);
        cs.push_group(
            0,
            1,
            MachineConfig {
                items: vec![setup(0, 0, 1)],
            },
        );
        cs.reset(5);
        assert!(cs.groups().is_empty());
        assert_eq!(cs.machines(), 5);
    }

    #[test]
    fn empty_groups_ignored() {
        let mut cs = CompactSchedule::new(2);
        cs.push_group(0, 0, MachineConfig::default());
        cs.push_group(
            0,
            1,
            MachineConfig::default(), // empty config
        );
        assert!(cs.groups().is_empty());
        assert_eq!(cs.makespan(), Rational::ZERO);
    }
}
