//! The explicit [`Schedule`] representation.

use bss_json::{FromJson, JsonError, ToJson, Value};
use bss_rational::Rational;

use crate::{ItemKind, Placement};

/// An explicit schedule: a bag of placements on `m` machines.
///
/// The structure is deliberately permissive — algorithms push placements in
/// whatever order is convenient; [`crate::validate`] is the arbiter of
/// feasibility. Queries that need per-machine order sort on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    machines: usize,
    placements: Vec<Placement>,
}

impl ToJson for Schedule {
    fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("machines".into(), Value::Int(self.machines as i128)),
            ("placements".into(), self.placements.to_json_value()),
        ])
    }
}

impl FromJson for Schedule {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(Schedule {
            machines: bss_json::int_from(bss_json::required(value, "machines")?, "machines")?,
            placements: Vec::from_json_value(bss_json::required(value, "placements")?)?,
        })
    }
}

impl Schedule {
    /// An empty schedule on `machines` machines.
    #[must_use]
    pub fn new(machines: usize) -> Self {
        Schedule {
            machines,
            placements: Vec::new(),
        }
    }

    /// Number of machines.
    #[must_use]
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Clears the schedule for reuse on `machines` machines, keeping the
    /// placement buffer's capacity (warm builders re-emit into the same
    /// output without reallocating).
    pub fn reset(&mut self, machines: usize) {
        self.machines = machines;
        self.placements.clear();
    }

    /// Adds a placement. Zero-length placements are ignored.
    pub fn push(&mut self, p: Placement) {
        if p.len.is_positive() {
            self.placements.push(p);
        }
    }

    /// Adds a setup placement.
    pub fn push_setup(&mut self, machine: usize, start: Rational, len: Rational, class: usize) {
        self.push(Placement::new(machine, start, len, ItemKind::Setup(class)));
    }

    /// Adds a job-piece placement.
    pub fn push_piece(
        &mut self,
        machine: usize,
        start: Rational,
        len: Rational,
        job: usize,
        class: usize,
    ) {
        self.push(Placement::new(
            machine,
            start,
            len,
            ItemKind::Piece { job, class },
        ));
    }

    /// All placements, in insertion order.
    #[must_use]
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Mutable access for schedule-repair passes (e.g. step 4 of the
    /// non-preemptive dual algorithm).
    pub fn placements_mut(&mut self) -> &mut Vec<Placement> {
        &mut self.placements
    }

    /// The makespan: the largest placement end time (0 if empty).
    #[must_use]
    pub fn makespan(&self) -> Rational {
        self.placements
            .iter()
            .map(Placement::end)
            .max()
            .unwrap_or(Rational::ZERO)
    }

    /// Total busy time on `machine` (setups + job pieces).
    #[must_use]
    pub fn machine_load(&self, machine: usize) -> Rational {
        self.placements
            .iter()
            .filter(|p| p.machine == machine)
            .map(|p| p.len)
            .fold(Rational::ZERO, |a, b| a + b)
    }

    /// Busy time of every machine.
    #[must_use]
    pub fn loads(&self) -> Vec<Rational> {
        let mut loads = vec![Rational::ZERO; self.machines];
        for p in &self.placements {
            loads[p.machine] += p.len;
        }
        loads
    }

    /// Number of setup placements (the `Σ λ_i` of the paper's load accounting).
    #[must_use]
    pub fn num_setups(&self) -> usize {
        self.placements.iter().filter(|p| p.kind.is_setup()).count()
    }

    /// Number of job-piece placements.
    #[must_use]
    pub fn num_pieces(&self) -> usize {
        self.placements
            .iter()
            .filter(|p| !p.kind.is_setup())
            .count()
    }

    /// Placements of `machine`, sorted by start time.
    #[must_use]
    pub fn machine_timeline(&self, machine: usize) -> Vec<Placement> {
        let mut row: Vec<Placement> = self
            .placements
            .iter()
            .copied()
            .filter(|p| p.machine == machine)
            .collect();
        row.sort_by_key(|p| p.start);
        row
    }

    /// Merges another schedule's placements into this one (machine indices are
    /// taken as-is; the caller is responsible for disjointness).
    pub fn absorb(&mut self, other: Schedule) {
        debug_assert_eq!(self.machines, other.machines);
        self.placements.extend(other.placements);
    }

    /// Serializes the schedule to pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        bss_json::encode_pretty(self)
    }

    /// Parses a schedule from JSON. The result is *not* checked for
    /// feasibility — run [`crate::validate`] against an instance for that.
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        bss_json::decode(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> Schedule {
        let mut s = Schedule::new(2);
        s.push_setup(0, Rational::ZERO, Rational::from(2u64), 0);
        s.push_piece(0, Rational::from(2u64), Rational::from(3u64), 0, 0);
        s.push_setup(1, Rational::ZERO, Rational::from(1u64), 1);
        s.push_piece(1, Rational::from(1u64), Rational::new(5, 2), 1, 1);
        s
    }

    #[test]
    fn makespan_and_loads() {
        let s = sched();
        assert_eq!(s.makespan(), Rational::from(5u64));
        assert_eq!(s.machine_load(0), Rational::from(5u64));
        assert_eq!(s.machine_load(1), Rational::new(7, 2));
        assert_eq!(s.loads(), vec![Rational::from(5u64), Rational::new(7, 2)]);
    }

    #[test]
    fn zero_length_placements_are_dropped() {
        let mut s = Schedule::new(1);
        s.push_piece(0, Rational::ZERO, Rational::ZERO, 0, 0);
        assert!(s.placements().is_empty());
    }

    #[test]
    fn counts() {
        let s = sched();
        assert_eq!(s.num_setups(), 2);
        assert_eq!(s.num_pieces(), 2);
    }

    #[test]
    fn timeline_is_sorted() {
        let mut s = Schedule::new(1);
        s.push_piece(0, Rational::from(5u64), Rational::ONE, 0, 0);
        s.push_setup(0, Rational::ZERO, Rational::ONE, 0);
        let tl = s.machine_timeline(0);
        assert!(tl[0].start < tl[1].start);
    }

    #[test]
    fn empty_schedule_makespan_zero() {
        assert_eq!(Schedule::new(3).makespan(), Rational::ZERO);
    }
}
