//! The sequence-dependent bridge, end to end: reductions are bit-exact,
//! uniform instances solve through the batch-setup algorithms within the
//! proven guarantee (confirmed by the seqdep-side evaluator), and the
//! general heuristic dual honors the documented `Solution` invariants.

use batch_setup_scheduling::core::{
    solve_problem, solve_seqdep, Algorithm, DualWorkspace, Problem, SeqDepProblem, Trace,
};
use batch_setup_scheduling::prelude::*;
use batch_setup_scheduling::seqdep::{reduce, solver, SeqDepInstance};
use proptest::prelude::*;

/// Strategy: a random *uniform* sequence-dependent instance (the batch-setup
/// special case), kept in raw integer-vector form so failures shrink.
fn arb_uniform_parts() -> impl Strategy<Value = (usize, Vec<u64>, Vec<u64>)> {
    (1usize..=5, 2usize..=8).prop_flat_map(|(m, c)| {
        (
            Just(m),
            proptest::collection::vec(1u64..60, c..=c),
            proptest::collection::vec(1u64..120, c..=c),
        )
    })
}

fn uniform_from_parts(machines: usize, setups: &[u64], work: &[u64]) -> SeqDepInstance {
    let c = setups.len();
    let switch: Vec<Vec<u64>> = (0..c)
        .map(|i| (0..c).map(|j| if i == j { 0 } else { setups[j] }).collect())
        .collect();
    SeqDepInstance::new(machines, setups.to_vec(), switch, work.to_vec())
        .expect("valid by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The acceptance-criterion round trip: uniform `SeqDepInstance →
    /// Instance → solve` produces schedules whose makespan the seqdep-side
    /// `makespan`/`machine_time` evaluator confirms within the variant's
    /// proven guarantee — and the reduction itself is bit-exact on setups
    /// and per-class work in both directions.
    #[test]
    fn uniform_round_trip_confirmed_by_evaluator(
        (machines, setups, work) in arb_uniform_parts(),
    ) {
        let sd = uniform_from_parts(machines, &setups, &work);

        // Reduction: bit-exact on setups and jobs.
        let reduced = reduce::to_uniform_instance(&sd).expect("uniform");
        prop_assert_eq!(reduced.machines(), machines);
        prop_assert_eq!(reduced.num_classes(), setups.len());
        for j in 0..setups.len() {
            prop_assert_eq!(reduced.setup(j), setups[j]);
            prop_assert_eq!(reduced.class_jobs(j), &[j]);
            prop_assert_eq!(reduced.job(j).time, work[j]);
        }
        // And exactly invertible.
        prop_assert_eq!(reduce::from_instance(&reduced), sd.clone());

        // Solve through the unified surface; the uniform regime must engage.
        let problem = SeqDepProblem::new(&sd);
        prop_assert!(problem.uniform_reduction().is_some());
        for algo in [Algorithm::ThreeHalves, Algorithm::Portfolio] {
            let sol = solve_seqdep(&sd, algo);
            if algo == Algorithm::Portfolio && sol.ratio_bound == Rational::ONE {
                // The portfolio's exact oracle closed this tiny instance:
                // the reported makespan *is* OPT, certified exactly.
                prop_assert_eq!(sol.certificate, sol.makespan);
            } else {
                prop_assert_eq!(sol.ratio_bound, Rational::new(3, 2));
            }

            // Map the schedule back to per-machine class orders and confirm
            // with the seqdep evaluator: machine_time re-prices every order
            // exactly, and the makespan honors the proven guarantee.
            let orders = reduce::orders_from_schedule(sol.schedule(), &reduced);
            prop_assert!(sd.check_orders(&orders).is_ok());
            let confirmed = Rational::from(sd.makespan(&orders));
            prop_assert!(confirmed <= sol.makespan);
            prop_assert!(
                confirmed <= sol.ratio_bound * sol.accepted,
                "evaluator {} > 3/2 * {}", confirmed, sol.accepted
            );
            // Per-machine agreement, not just the max.
            for (u, order) in orders.iter().enumerate() {
                let end = sol
                    .schedule()
                    .machine_timeline(u)
                    .last()
                    .map(batch_setup_scheduling::schedule::Placement::end)
                    .unwrap_or(Rational::ZERO);
                prop_assert!(Rational::from(sd.machine_time(order)) <= end);
            }
            // The certificate is a genuine lower bound on the (shared)
            // optimum of both models.
            prop_assert!(sol.certificate <= confirmed.max(sol.makespan));
        }
    }

    /// The general heuristic dual: constructive acceptance means the solved
    /// schedule's makespan is within `ratio_bound · accepted`, and the
    /// solver-side schedule re-prices exactly through the evaluator.
    #[test]
    fn general_instances_reprice_exactly(
        seed in 0u64..1_000_000,
        c in 2usize..16,
        m in 1usize..5,
    ) {
        let inst = batch_setup_scheduling::gen::seqdep::triangle_violating(c, m, seed);
        let mut ws = DualWorkspace::new();
        let sol =
            batch_setup_scheduling::core::solve_seqdep_with(&mut ws, &inst, Algorithm::ThreeHalves);
        prop_assert!(sol.makespan <= sol.ratio_bound * sol.accepted);
        // Re-run the builder at the accepted guess; the scratch orders must
        // re-price to the same makespan.
        let mut out = Schedule::new(inst.machines());
        prop_assert!(solver::build_into(&mut ws_scratch(), &inst, sol.accepted, &mut out));
        prop_assert_eq!(out.makespan(), sol.makespan);
    }
}

/// A fresh scratch per call (determinism of the builder is proven in the
/// solver's unit tests; here we only need any scratch).
fn ws_scratch() -> solver::SeqDepScratch {
    solver::SeqDepScratch::new()
}

#[test]
fn tsp_instances_stay_above_the_exact_oracle() {
    for seed in 0..10 {
        let inst = batch_setup_scheduling::gen::seqdep::tsp_path(9, seed);
        let exact = batch_setup_scheduling::seqdep::exact_single_machine(&inst);
        let sol = solve_seqdep(&inst, Algorithm::Portfolio);
        assert!(sol.makespan >= Rational::from(exact), "below optimum?!");
        assert!(sol.makespan <= sol.ratio_bound * sol.accepted);
        assert!(sol.certificate <= Rational::from(exact));
    }
}

#[test]
fn problem_trait_objects_unify_both_models() {
    // The same generic driver solves a batch-setup variant and a seqdep
    // instance through `&dyn Problem` — one surface, two models. (`Sync`
    // because the driver may fan probes out to worker threads.)
    let bss_inst = batch_setup_scheduling::gen::uniform(40, 6, 3, 1);
    let sd_inst = batch_setup_scheduling::gen::seqdep::triangle_violating(10, 3, 1);
    let bss_problem = batch_setup_scheduling::core::BssProblem::new(&bss_inst, Variant::Preemptive);
    let sd_problem = SeqDepProblem::new(&sd_inst);
    let problems: [&(dyn Problem + Sync); 2] = [&bss_problem, &sd_problem];
    let mut ws = DualWorkspace::new();
    for p in problems {
        let sol = solve_problem(&mut ws, p, Algorithm::ThreeHalves, &mut Trace::disabled());
        assert!(
            sol.makespan <= sol.ratio_bound * sol.accepted,
            "{}",
            p.name()
        );
        assert!(sol.certificate <= sol.makespan, "{}", p.name());
        assert!(p.t_min() <= sol.accepted.max(p.t_min()), "{}", p.name());
    }
}

#[test]
fn seqdep_json_solves_identically_after_round_trip() {
    let inst = batch_setup_scheduling::gen::seqdep::triangle_violating(12, 4, 9);
    let back = SeqDepInstance::from_json(&inst.to_json()).expect("round trip");
    assert_eq!(back, inst);
    let a = solve_seqdep(&inst, Algorithm::ThreeHalves);
    let b = solve_seqdep(&back, Algorithm::ThreeHalves);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.schedule().placements(), b.schedule().placements());
}

/// The `O(c²)` uniformity scan is memoized on the *instance*: however many
/// times a `SeqDepProblem` is rebuilt or solved on top of it, the scan runs
/// exactly once (and not at all until someone asks).
#[test]
fn uniformity_scan_runs_once_per_instance() {
    let inst = uniform_from_parts(3, &[5, 9, 2, 7], &[11, 4, 8, 6]);
    assert_eq!(inst.uniformity_checks(), 0, "the memo must start cold");
    for _ in 0..5 {
        let p = SeqDepProblem::new(&inst);
        assert!(p.uniform_reduction().is_some(), "instance is uniform");
        let sol = solve_seqdep(&inst, Algorithm::ThreeHalves);
        assert!(sol.makespan <= sol.ratio_bound * sol.accepted);
    }
    assert_eq!(
        inst.uniformity_checks(),
        1,
        "repeated bridge builds and solves must reuse the memoized scan"
    );
    // Clones carry the value, not the memo: they start cold again.
    let clone = inst.clone();
    assert_eq!(clone.uniformity_checks(), 0);
    assert_eq!(clone, inst);
}

#[test]
fn embedding_upper_bounds_the_nonpreemptive_optimum() {
    // Instance → SeqDepInstance restricts the problem (one batch per
    // class), so any seqdep makespan upper-bounds nothing *below* the
    // non-preemptive certificate and is a feasible non-preemptive makespan.
    for seed in 0..10 {
        let bss_inst = batch_setup_scheduling::gen::uniform(40, 6, 3, seed);
        let embedded = reduce::from_instance(&bss_inst);
        let sd = solve_seqdep(&embedded, Algorithm::Portfolio);
        let nonp = solve(&bss_inst, Variant::NonPreemptive, Algorithm::ThreeHalves);
        // The seqdep schedule maps to a feasible non-preemptive schedule of
        // the original, so OPT_nonp <= sd.makespan; the certificate is a
        // strict lower bound on OPT_nonp.
        assert!(nonp.certificate <= sd.makespan, "seed {seed}");
    }
}
