//! Build-surface smoke test: every `Variant` × `Algorithm` combination must
//! solve a small fixed instance through the facade and produce a feasible
//! schedule that meets its guarantee. This is deliberately tiny and
//! deterministic — it exists so that a broken manifest, feature, or re-export
//! is caught by tier-1 even when the heavier suites are filtered out.

use batch_setup_scheduling::prelude::*;

fn tiny_instance() -> Instance {
    let mut b = InstanceBuilder::new(3);
    let red = b.add_class(10);
    let blue = b.add_class(4);
    let green = b.add_class(1);
    for t in [7, 3, 9, 2] {
        b.add_job(red, t);
    }
    for t in [5, 5, 6] {
        b.add_job(blue, t);
    }
    b.add_job(green, 1);
    b.build().expect("valid instance")
}

#[test]
fn every_variant_algorithm_pair_solves_and_validates() {
    let inst = tiny_instance();
    let algos = [
        Algorithm::TwoApprox,
        Algorithm::EpsilonSearch { eps_log2: 6 },
        Algorithm::ThreeHalves,
        Algorithm::Portfolio,
    ];
    for variant in Variant::ALL {
        for algo in algos {
            let sol = solve(&inst, variant, algo);
            let violations = validate(sol.schedule(), &inst, variant);
            assert!(
                violations.is_empty(),
                "{variant} {algo:?}: infeasible: {violations:?}"
            );
            assert_eq!(
                sol.makespan,
                sol.schedule().makespan(),
                "{variant} {algo:?}"
            );
            assert!(
                sol.makespan <= sol.ratio_bound * sol.accepted,
                "{variant} {algo:?}: {} > {} * {}",
                sol.makespan,
                sol.ratio_bound,
                sol.accepted
            );
        }
    }
}

/// Workspace reuse must be an invisible optimization: re-running `solve` for
/// every `Variant` × `Algorithm` pair through one shared [`DualWorkspace`]
/// yields schedules identical to the fresh-allocation path — including on a
/// second pass over the warmed-up buffers, and across instances of different
/// shapes through the same workspace.
#[test]
fn shared_workspace_matches_fresh_solves_exactly() {
    let algos = [
        Algorithm::TwoApprox,
        Algorithm::EpsilonSearch { eps_log2: 6 },
        Algorithm::ThreeHalves,
        Algorithm::Portfolio,
    ];
    let instances = [
        tiny_instance(),
        batch_setup_scheduling::gen::uniform(60, 8, 4, 11),
        batch_setup_scheduling::gen::expensive_setups(40, 5, 2),
    ];
    let mut ws = DualWorkspace::new();
    for _pass in 0..2 {
        for inst in &instances {
            for variant in Variant::ALL {
                for algo in algos {
                    let fresh = solve(inst, variant, algo);
                    let shared = solve_with(&mut ws, inst, variant, algo);
                    assert_eq!(
                        shared.schedule(),
                        fresh.schedule(),
                        "{variant} {algo:?}: workspace changed the schedule"
                    );
                    assert_eq!(shared.makespan, fresh.makespan);
                    assert_eq!(shared.accepted, fresh.accepted);
                    assert_eq!(shared.certificate, fresh.certificate);
                    assert_eq!(shared.probes, fresh.probes);
                    assert_eq!(
                        shared.compact().is_some(),
                        fresh.compact().is_some(),
                        "{variant} {algo:?}: compact presence diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn facade_reexports_are_wired() {
    // One call through each re-exported crate root, so a missing workspace
    // member or renamed facade path fails this test rather than only rustdoc.
    let inst = tiny_instance();
    let t_min = batch_setup_scheduling::instance::tmin(&inst, Variant::Splittable);
    assert!(t_min.is_positive());
    let generated = batch_setup_scheduling::gen::uniform(12, 3, 2, 7);
    assert_eq!(generated.num_jobs(), 12);
    let baseline = batch_setup_scheduling::baselines::lpt_batches(&inst);
    assert!(validate(&baseline, &inst, Variant::NonPreemptive).is_empty());
}

#[test]
fn instance_json_roundtrips_through_facade() {
    let inst = tiny_instance();
    let back = Instance::from_json(&inst.to_json()).expect("roundtrip");
    assert_eq!(back, inst);
}

#[test]
fn schedule_json_roundtrips_through_facade() {
    let inst = tiny_instance();
    let sol = solve(&inst, Variant::Preemptive, Algorithm::ThreeHalves);
    let back = Schedule::from_json(&sol.schedule().to_json()).expect("roundtrip");
    assert_eq!(&back, sol.schedule());
    assert!(validate(&back, &inst, Variant::Preemptive).is_empty());
}
