//! The golden repro suite: regenerates every study's deterministic
//! artifacts in-process and diffs them against the committed goldens under
//! `results/figures/` — the whole paper reproduction as a regression test.
//!
//! * Default / CI per-push (`BSS_REPRO_GRID=fast` or unset): the fast grid,
//!   a strict row-subset of the golden grid. Grid-insensitive files
//!   (figures, the bounds table) are byte-compared; grid-sensitive CSVs are
//!   checked row-by-row against the golden files.
//! * Nightly (`BSS_REPRO_GRID=full`): the full grid, byte-for-byte,
//!   MANIFEST included.
//! * Re-blessing after an intentional change:
//!   `BSS_BLESS=1 cargo test --release --test golden_repro` (full grid
//!   enforced), then commit the refreshed `results/figures/`.

use std::path::PathBuf;

use bss_bench::repro::{
    self, compare_deterministic, compare_layout, manifest, render_manifest, run_all, Grid,
    ReproConfig, MANIFEST_FILE,
};

fn golden_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("figures")
}

fn config() -> ReproConfig {
    // The test defaults to the fast grid (the full grid is the *binaries'*
    // default): `cargo test -q` must stay cheap in debug mode. Timing is
    // never measured here — only the deterministic part is golden.
    let mut cfg = ReproConfig::from_env(Grid::Fast).expect("BSS_REPRO_GRID must be fast|full");
    cfg.timing = false;
    cfg
}

fn blessing() -> bool {
    std::env::var("BSS_BLESS").is_ok_and(|v| v == "1")
}

#[test]
fn regenerated_artifacts_match_committed_goldens() {
    let cfg = config();
    let root = golden_root();
    let artifacts = run_all(&cfg);
    let manifest_text = render_manifest(&manifest(&cfg, &artifacts));

    if blessing() {
        assert_eq!(
            cfg.grid,
            Grid::Full,
            "bless on the golden grid: BSS_BLESS=1 BSS_REPRO_GRID=full"
        );
        // A bless replaces the tree wholesale so renamed or dropped
        // artifacts do not linger as stale goldens (compare_layout would
        // flag them on the very next run).
        if root.exists() {
            std::fs::remove_dir_all(&root).expect("clear stale goldens");
        }
        let written =
            repro::write_deterministic(&root, &artifacts, &manifest_text).expect("write goldens");
        println!("blessed {} files under {}", written.len(), root.display());
        return;
    }

    let mut problems = Vec::new();
    for artifact in &artifacts {
        problems.extend(compare_deterministic(&root, artifact, cfg.grid));
    }
    // The file *names* are grid-independent, so stale goldens (a study that
    // stopped producing an output) are caught on every grid, not just
    // nightly's byte-exact full pass.
    problems.extend(compare_layout(&root, &artifacts));
    if cfg.grid == Grid::Full {
        let path = root.join(MANIFEST_FILE);
        match std::fs::read_to_string(&path) {
            Ok(golden) if golden == manifest_text => {}
            Ok(_) => problems.push(format!("{}: byte mismatch", path.display())),
            Err(e) => problems.push(format!("{}: cannot read golden: {e}", path.display())),
        }
    }
    assert!(
        problems.is_empty(),
        "{} golden mismatch(es) on the {} grid:\n  {}\n\
         If the change is intentional, re-bless with\n  \
         BSS_BLESS=1 BSS_REPRO_GRID=full cargo test --release --test golden_repro\n\
         and commit the refreshed results/figures/.",
        problems.len(),
        cfg.grid.name(),
        problems.join("\n  ")
    );
}

/// The acceptance table: the committed bounds artifact certifies that every
/// variant's achieved ratio stays within both the proven bound and the
/// paper's claim (3/2 splittable, 3/2+ε preemptive, 5/3+ε non-preemptive,
/// 3/2 sequence-dependent uniform) — and the freshly regenerated table
/// agrees with it byte-for-byte on every grid.
#[test]
fn committed_bounds_table_certifies_every_variant() {
    let golden = std::fs::read_to_string(golden_root().join("table1").join("bounds.csv"))
        .expect("committed bounds.csv (run repro-all and commit results/figures)");
    let mut lines = golden.lines();
    let header = lines.next().expect("header");
    assert_eq!(
        header,
        "problem,algorithm,paper claim,proven bound,achieved max (makespan/accepted),within"
    );
    let rows: Vec<&str> = lines.collect();
    for problem in [
        "splittable",
        "preemptive",
        "non-preemptive",
        "seqdep-uniform",
    ] {
        assert!(
            rows.iter().any(|r| r.starts_with(problem)),
            "bounds table misses {problem}"
        );
    }
    for row in &rows {
        assert!(
            row.ends_with(",yes"),
            "bounds row out of certification: {row}"
        );
    }
    // Byte identity of the committed table with a fresh regeneration is
    // covered by `regenerated_artifacts_match_committed_goldens`: bounds.csv
    // is grid-insensitive, so that test byte-compares it on every grid.
}
