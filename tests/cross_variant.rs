//! Cross-variant and cross-representation invariants.

use batch_setup_scheduling::prelude::*;

#[test]
fn relaxation_order_of_certified_makespans() {
    // More scheduling freedom never certifies a *larger* optimum: the
    // splittable certificate (a strict lower bound on OPT_split) can never
    // exceed the non-preemptive makespan (an upper bound on OPT_nonp scaled
    // by the ratio), and so on down the relaxation chain.
    for seed in 0..20 {
        let inst = batch_setup_scheduling::gen::uniform(50, 7, 4, seed);
        let split = solve(&inst, Variant::Splittable, Algorithm::ThreeHalves);
        let pmtn = solve(&inst, Variant::Preemptive, Algorithm::ThreeHalves);
        let nonp = solve(&inst, Variant::NonPreemptive, Algorithm::ThreeHalves);
        // certificate_variant < OPT_variant <= makespan of any feasible
        // schedule of a *more restricted* variant.
        assert!(split.certificate <= pmtn.makespan);
        assert!(split.certificate <= nonp.makespan);
        assert!(pmtn.certificate <= nonp.makespan);
        // A non-preemptive schedule is feasible for the relaxed variants too.
        assert!(validate(&nonp.schedule, &inst, Variant::Preemptive).is_empty());
        assert!(validate(&nonp.schedule, &inst, Variant::Splittable).is_empty());
        // A preemptive schedule is feasible for the splittable variant.
        assert!(validate(&pmtn.schedule, &inst, Variant::Splittable).is_empty());
    }
}

#[test]
fn solve_is_deterministic() {
    let inst = batch_setup_scheduling::gen::uniform(80, 9, 5, 3);
    for variant in Variant::ALL {
        let a = solve(&inst, variant, Algorithm::ThreeHalves);
        let b = solve(&inst, variant, Algorithm::ThreeHalves);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.schedule.placements(), b.schedule.placements());
    }
}

#[test]
fn compact_expansion_is_consistent() {
    for seed in 0..10 {
        let inst = batch_setup_scheduling::gen::uniform(60, 8, 24, seed);
        let sol = solve(&inst, Variant::Splittable, Algorithm::ThreeHalves);
        let compact = sol.compact.expect("splittable");
        let expanded = compact.expand();
        assert_eq!(expanded.makespan(), sol.makespan);
        assert_eq!(compact.makespan(), sol.makespan);
        // Per-job assigned time matches between representations.
        for j in 0..inst.num_jobs() {
            assert_eq!(
                compact.job_assigned(j),
                Rational::from(inst.job(j).time),
                "job {j}"
            );
        }
    }
}

#[test]
fn instance_json_roundtrip_preserves_solutions() {
    let inst = batch_setup_scheduling::gen::uniform(40, 6, 3, 11);
    let json = inst.to_json();
    let back = Instance::from_json(&json).expect("roundtrip");
    for variant in Variant::ALL {
        let a = solve(&inst, variant, Algorithm::ThreeHalves);
        let b = solve(&back, variant, Algorithm::ThreeHalves);
        assert_eq!(a.makespan, b.makespan);
    }
}

#[test]
fn setup_count_never_below_class_count() {
    // Every class needs at least one setup (Lemma 1: λ_i >= α_i >= 1).
    for seed in 0..10 {
        let inst = batch_setup_scheduling::gen::uniform(50, 7, 4, seed);
        for variant in Variant::ALL {
            let sol = solve(&inst, variant, Algorithm::ThreeHalves);
            assert!(sol.schedule.num_setups() >= inst.num_classes());
        }
    }
}

#[test]
fn makespan_equals_max_machine_end() {
    let inst = batch_setup_scheduling::gen::uniform(50, 7, 4, 5);
    let sol = solve(&inst, Variant::Preemptive, Algorithm::ThreeHalves);
    let max_end = (0..inst.machines())
        .filter_map(|u| {
            sol.schedule
                .machine_timeline(u)
                .last()
                .map(batch_setup_scheduling::schedule::Placement::end)
        })
        .max()
        .unwrap();
    assert_eq!(sol.makespan, max_end);
}

#[test]
fn single_job_instances_are_scheduled_optimally() {
    let mut b = InstanceBuilder::new(3);
    b.add_batch(4, &[9]);
    let inst = b.build().unwrap();
    for variant in Variant::ALL {
        let sol = solve(&inst, variant, Algorithm::ThreeHalves);
        // One job: OPT = s + t = 13 for every variant; splitting cannot help
        // a single job either (a piece still needs the setup first).
        assert!(
            sol.makespan <= Rational::from(13u64) * Rational::new(3, 2),
            "{variant}"
        );
        assert!(validate(&sol.schedule, &inst, variant).is_empty());
    }
}
