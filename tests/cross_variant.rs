//! Cross-variant and cross-representation invariants.

use batch_setup_scheduling::prelude::*;

#[test]
fn relaxation_order_of_certified_makespans() {
    // More scheduling freedom never certifies a *larger* optimum: the
    // splittable certificate (a strict lower bound on OPT_split) can never
    // exceed the non-preemptive makespan (an upper bound on OPT_nonp scaled
    // by the ratio), and so on down the relaxation chain.
    for seed in 0..20 {
        let inst = batch_setup_scheduling::gen::uniform(50, 7, 4, seed);
        let split = solve(&inst, Variant::Splittable, Algorithm::ThreeHalves);
        let pmtn = solve(&inst, Variant::Preemptive, Algorithm::ThreeHalves);
        let nonp = solve(&inst, Variant::NonPreemptive, Algorithm::ThreeHalves);
        // certificate_variant < OPT_variant <= makespan of any feasible
        // schedule of a *more restricted* variant.
        assert!(split.certificate <= pmtn.makespan);
        assert!(split.certificate <= nonp.makespan);
        assert!(pmtn.certificate <= nonp.makespan);
        // A non-preemptive schedule is feasible for the relaxed variants too.
        assert!(validate(nonp.schedule(), &inst, Variant::Preemptive).is_empty());
        assert!(validate(nonp.schedule(), &inst, Variant::Splittable).is_empty());
        // A preemptive schedule is feasible for the splittable variant.
        assert!(validate(pmtn.schedule(), &inst, Variant::Splittable).is_empty());
    }
}

/// The relaxation chain `split <= pmtn <= nonp` on adversarial families:
/// Δ-wide instances (processing times spanning many orders of magnitude),
/// `c ≈ m` contention (as many classes as machines), and all-expensive
/// instances (every class setup above the mean load, so every class sits in
/// `I_exp` at every probed guess). Certified lower bounds of a relaxed
/// variant never exceed upper bounds of a more restricted one, and the
/// restricted schedules remain feasible under the relaxed rules.
#[test]
fn dominance_on_wide_delta_and_contention_families() {
    let families: Vec<(String, Instance)> = (0..6u64)
        .map(|seed| {
            (
                format!("wide_delta seed {seed}"),
                batch_setup_scheduling::gen::wide_delta(70, 9, 4, 1 << 20, seed),
            )
        })
        .chain((0..6u64).map(|seed| {
            // c == m: every machine is contended by exactly one class's
            // worth of setups on average.
            (
                format!("contended seed {seed}"),
                batch_setup_scheduling::gen::contended(60, 6, 6, seed),
            )
        }))
        .chain((0..6u64).map(|seed| {
            // Every class expensive: the dual builders must wrap every
            // class over its β_i machines; the cheap path never fires.
            (
                format!("all_expensive seed {seed}"),
                batch_setup_scheduling::gen::all_expensive(50, 5, 9, seed),
            )
        }))
        .collect();
    for (name, inst) in &families {
        let split = solve(inst, Variant::Splittable, Algorithm::ThreeHalves);
        let pmtn = solve(inst, Variant::Preemptive, Algorithm::ThreeHalves);
        let nonp = solve(inst, Variant::NonPreemptive, Algorithm::ThreeHalves);
        // Dominance: lower bounds of the relaxation chain.
        assert!(split.certificate <= pmtn.makespan, "{name}");
        assert!(split.certificate <= nonp.makespan, "{name}");
        assert!(pmtn.certificate <= nonp.makespan, "{name}");
        // The accepted guesses (each <= OPT of its variant) follow the chain
        // against the upper bounds of more restricted variants.
        assert!(split.accepted <= pmtn.makespan, "{name}");
        assert!(pmtn.accepted <= nonp.makespan, "{name}");
        // Feasibility cascades down the relaxation order.
        assert!(
            validate(nonp.schedule(), inst, Variant::Preemptive).is_empty(),
            "{name}"
        );
        assert!(
            validate(nonp.schedule(), inst, Variant::Splittable).is_empty(),
            "{name}"
        );
        assert!(
            validate(pmtn.schedule(), inst, Variant::Splittable).is_empty(),
            "{name}"
        );
        // The splittable compact output passes the compact-aware validator.
        let compact = split.compact().expect("splittable is compact");
        assert!(
            batch_setup_scheduling::schedule::validate_compact(compact, inst, Variant::Splittable)
                .is_empty(),
            "{name}"
        );
    }
}

#[test]
fn solve_is_deterministic() {
    let inst = batch_setup_scheduling::gen::uniform(80, 9, 5, 3);
    for variant in Variant::ALL {
        let a = solve(&inst, variant, Algorithm::ThreeHalves);
        let b = solve(&inst, variant, Algorithm::ThreeHalves);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.schedule().placements(), b.schedule().placements());
    }
}

#[test]
fn compact_expansion_is_consistent() {
    for seed in 0..10 {
        let inst = batch_setup_scheduling::gen::uniform(60, 8, 24, seed);
        let sol = solve(&inst, Variant::Splittable, Algorithm::ThreeHalves);
        let compact = sol.compact().expect("splittable");
        let expanded = compact.expand().expect("in range");
        assert_eq!(expanded.makespan(), sol.makespan);
        // The lazy expansion must agree with a manual one, and streaming
        // into a fresh sink must agree with both.
        assert_eq!(&expanded, sol.schedule());
        let mut streamed = Schedule::new(compact.machines());
        compact.expand_into(&mut streamed).expect("in range");
        assert_eq!(streamed, expanded);
        assert_eq!(compact.makespan(), sol.makespan);
        // Per-job assigned time matches between representations.
        for j in 0..inst.num_jobs() {
            assert_eq!(
                compact.job_assigned(j),
                Rational::from(inst.job(j).time),
                "job {j}"
            );
        }
    }
}

#[test]
fn instance_json_roundtrip_preserves_solutions() {
    let inst = batch_setup_scheduling::gen::uniform(40, 6, 3, 11);
    let json = inst.to_json();
    let back = Instance::from_json(&json).expect("roundtrip");
    for variant in Variant::ALL {
        let a = solve(&inst, variant, Algorithm::ThreeHalves);
        let b = solve(&back, variant, Algorithm::ThreeHalves);
        assert_eq!(a.makespan, b.makespan);
    }
}

#[test]
fn setup_count_never_below_class_count() {
    // Every class needs at least one setup (Lemma 1: λ_i >= α_i >= 1).
    for seed in 0..10 {
        let inst = batch_setup_scheduling::gen::uniform(50, 7, 4, seed);
        for variant in Variant::ALL {
            let sol = solve(&inst, variant, Algorithm::ThreeHalves);
            assert!(sol.schedule().num_setups() >= inst.num_classes());
        }
    }
}

#[test]
fn makespan_equals_max_machine_end() {
    let inst = batch_setup_scheduling::gen::uniform(50, 7, 4, 5);
    let sol = solve(&inst, Variant::Preemptive, Algorithm::ThreeHalves);
    let max_end = (0..inst.machines())
        .filter_map(|u| {
            sol.schedule()
                .machine_timeline(u)
                .last()
                .map(batch_setup_scheduling::schedule::Placement::end)
        })
        .max()
        .unwrap();
    assert_eq!(sol.makespan, max_end);
}

#[test]
fn single_job_instances_are_scheduled_optimally() {
    let mut b = InstanceBuilder::new(3);
    b.add_batch(4, &[9]);
    let inst = b.build().unwrap();
    for variant in Variant::ALL {
        let sol = solve(&inst, variant, Algorithm::ThreeHalves);
        // One job: OPT = s + t = 13 for every variant; splitting cannot help
        // a single job either (a piece still needs the setup first).
        assert!(
            sol.makespan <= Rational::from(13u64) * Rational::new(3, 2),
            "{variant}"
        );
        assert!(validate(sol.schedule(), &inst, variant).is_empty());
    }
}
