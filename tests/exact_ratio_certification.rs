//! Ratio certification against exact optima.
//!
//! On tiny instances the branch-and-bound oracle computes the exact
//! non-preemptive optimum. Since `OPT_split <= OPT_pmtn <= OPT_nonp`, every
//! variant's 3/2 algorithm must satisfy `makespan <= 1.5 · OPT_nonp` — and the
//! searches' *accepted guesses* must stay `<= OPT_nonp` (for the
//! non-preemptive variant this is exactly the `T* <= OPT` optimality property
//! behind Theorem 8).

use batch_setup_scheduling::baselines::{exact_nonpreemptive, ExactLimits};
use batch_setup_scheduling::prelude::*;

const SEEDS: u64 = 200;

fn tiny_with_opt() -> impl Iterator<Item = (Instance, Rational)> {
    (0..SEEDS).filter_map(|seed| {
        let inst = batch_setup_scheduling::gen::tiny(seed);
        let opt = exact_nonpreemptive(&inst, ExactLimits::default())?;
        Some((inst, Rational::from(opt)))
    })
}

#[test]
fn three_halves_within_bound_of_exact_opt() {
    for (inst, opt) in tiny_with_opt() {
        for variant in Variant::ALL {
            let sol = solve(&inst, variant, Algorithm::ThreeHalves);
            assert!(validate(sol.schedule(), &inst, variant).is_empty());
            assert!(
                sol.makespan <= opt * Rational::new(3, 2),
                "{variant}: makespan {} > 1.5 * OPT {} (n={}, m={})",
                sol.makespan,
                opt,
                inst.num_jobs(),
                inst.machines()
            );
        }
    }
}

#[test]
fn accepted_guesses_do_not_exceed_opt() {
    for (inst, opt) in tiny_with_opt() {
        for variant in Variant::ALL {
            let sol = solve(&inst, variant, Algorithm::ThreeHalves);
            assert!(
                sol.accepted <= opt,
                "{variant}: accepted {} > OPT_nonp {}",
                sol.accepted,
                opt
            );
        }
    }
}

#[test]
fn two_approx_within_factor_two_of_exact_opt() {
    for (inst, opt) in tiny_with_opt() {
        for variant in Variant::ALL {
            let sol = solve(&inst, variant, Algorithm::TwoApprox);
            assert!(validate(sol.schedule(), &inst, variant).is_empty());
            assert!(
                sol.makespan <= opt * 2u64,
                "{variant}: makespan {} > 2 * OPT {}",
                sol.makespan,
                opt
            );
        }
    }
}

#[test]
fn epsilon_search_respects_inflated_bound() {
    let eps = Rational::new(1, 1 << 7);
    for (inst, opt) in tiny_with_opt() {
        for variant in Variant::ALL {
            let sol = solve(&inst, variant, Algorithm::EpsilonSearch { eps_log2: 7 });
            assert!(validate(sol.schedule(), &inst, variant).is_empty());
            let bound = opt * Rational::new(3, 2) * (eps + 1u64);
            assert!(
                sol.makespan <= bound,
                "{variant}: makespan {} > (3/2)(1+eps) * OPT {}",
                sol.makespan,
                opt
            );
        }
    }
}

#[test]
fn certificates_are_true_lower_bounds() {
    for (inst, opt) in tiny_with_opt() {
        for variant in Variant::ALL {
            for algo in [
                Algorithm::TwoApprox,
                Algorithm::EpsilonSearch { eps_log2: 7 },
                Algorithm::ThreeHalves,
            ] {
                let sol = solve(&inst, variant, algo);
                // certificate <= OPT_variant <= OPT_nonp.
                assert!(
                    sol.certificate <= opt,
                    "{variant} {algo:?}: certificate {} > OPT {}",
                    sol.certificate,
                    opt
                );
            }
        }
    }
}

/// The exact optimum respects the instance lower bounds (Notes 1-2, Lemma 1)
/// and the 2-approximation window of Theorem 1.
#[test]
fn exact_opt_sits_in_the_certified_window() {
    for (inst, opt) in tiny_with_opt() {
        let lb = LowerBounds::of(&inst);
        let t_min = lb.tmin(Variant::NonPreemptive);
        assert!(opt >= t_min);
        assert!(opt <= t_min * 2u64);
        assert!(opt > Rational::from(lb.smax));
    }
}
