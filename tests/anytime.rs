//! Anytime-layer equivalence and degradation guarantees, at the facade.
//!
//! The contract the README states: an **uninterrupted** budgeted solve is
//! bit-identical to the plain solve (`Completion::Full`, same placements),
//! and an interrupted one degrades to a valid, certified solution — never a
//! panic, never an invalid schedule, never a lying bound. The exhaustive
//! per-checkpoint fault sweeps live in `crates/chaos`; this suite pins the
//! facade-level contract under the tier-1 gate.

use batch_setup_scheduling::prelude::*;

const ALGOS: [Algorithm; 4] = [
    Algorithm::TwoApprox,
    Algorithm::ThreeHalves,
    Algorithm::EpsilonSearch { eps_log2: 7 },
    Algorithm::Portfolio,
];

fn instances() -> Vec<(String, Instance)> {
    let mut out = Vec::new();
    for seed in [1, 17] {
        out.push((
            format!("uniform/{seed}"),
            batch_setup_scheduling::gen::uniform(120, 10, 4, seed),
        ));
        out.push((
            format!("tiny/{seed}"),
            batch_setup_scheduling::gen::tiny(seed),
        ));
    }
    out
}

fn assert_identical(label: &str, a: &Solution, b: &Solution) {
    assert_eq!(a.makespan, b.makespan, "{label}: makespan");
    assert_eq!(a.accepted, b.accepted, "{label}: accepted");
    assert_eq!(a.ratio_bound, b.ratio_bound, "{label}: ratio_bound");
    assert_eq!(a.certificate, b.certificate, "{label}: certificate");
    assert_eq!(a.probes, b.probes, "{label}: probes");
    assert_eq!(
        a.schedule().placements(),
        b.schedule().placements(),
        "{label}: placements"
    );
}

/// `Solution`-level sanity for a (possibly degraded) solve: feasible,
/// self-consistent, honestly bounded.
fn assert_valid(label: &str, inst: &Instance, variant: Variant, sol: &Solution) {
    let violations = validate(sol.schedule(), inst, variant);
    assert!(violations.is_empty(), "{label}: {violations:?}");
    assert_eq!(
        sol.makespan,
        sol.schedule().makespan(),
        "{label}: reported makespan"
    );
    assert!(
        sol.makespan <= sol.ratio_bound * sol.accepted,
        "{label}: bound violated"
    );
    assert!(
        sol.certificate.is_positive() && sol.certificate <= sol.makespan,
        "{label}: certificate window"
    );
}

#[test]
fn unlimited_budget_is_bit_identical_to_plain_solve() {
    for (name, inst) in instances() {
        for variant in Variant::ALL {
            for algo in ALGOS {
                let label = format!("{name}/{variant}/{algo:?}");
                let plain = solve(&inst, variant, algo);
                let budgeted = solve_budgeted(&inst, variant, algo, &SolveBudget::unlimited())
                    .expect("unlimited budget cannot fail");
                assert_eq!(budgeted.completion, Completion::Full, "{label}");
                assert_identical(&label, &budgeted, &plain);
            }
        }
    }
}

#[test]
fn pre_cancelled_solve_degrades_to_a_valid_fallback() {
    let token = CancelToken::new();
    token.cancel();
    for (name, inst) in instances() {
        for variant in Variant::ALL {
            for algo in ALGOS {
                let label = format!("{name}/{variant}/{algo:?}");
                let budget = SolveBudget::unlimited().with_cancel(&token);
                let sol = solve_budgeted(&inst, variant, algo, &budget)
                    .expect("cancellation is not an error");
                // Probe-free paths (the O(n) fallback, trivial m >= n
                // shapes) legitimately complete in full even under a dead
                // budget — but then they must match the plain solve exactly.
                if sol.completion == Completion::Full {
                    assert_identical(&label, &sol, &solve(&inst, variant, algo));
                } else {
                    assert_eq!(sol.completion, Completion::Cancelled, "{label}");
                }
                assert_valid(&label, &inst, variant, &sol);
            }
        }
    }
}

#[test]
fn every_probe_budget_level_yields_a_valid_certified_solution() {
    for (name, inst) in instances() {
        for variant in Variant::ALL {
            for algo in ALGOS {
                for work in [0, 1, 2, 3, 5, 8, 1000] {
                    let label = format!("{name}/{variant}/{algo:?}/work={work}");
                    let budget = SolveBudget::unlimited().with_work_limit(work);
                    let sol = solve_budgeted(&inst, variant, algo, &budget)
                        .expect("starvation is not an error");
                    assert_valid(&label, &inst, variant, &sol);
                    // A starved search still never beats its own bound, and a
                    // full one matches the plain solve.
                    if sol.completion == Completion::Full && work == 1000 {
                        assert_identical(&label, &sol, &solve(&inst, variant, algo));
                    }
                }
            }
        }
    }
}

#[test]
fn expired_deadline_degrades_not_errors() {
    for (name, inst) in instances() {
        for variant in Variant::ALL {
            let label = format!("{name}/{variant}");
            let budget = SolveBudget::unlimited().with_deadline(std::time::Duration::ZERO);
            let sol = solve_budgeted(&inst, variant, Algorithm::ThreeHalves, &budget)
                .expect("an expired deadline is not an error");
            // Trivial m >= n shapes complete without probing; every other
            // solve must report the expired deadline.
            if sol.completion == Completion::Full {
                assert_identical(&label, &sol, &solve(&inst, variant, Algorithm::ThreeHalves));
            } else {
                assert_eq!(
                    sol.completion,
                    Completion::Degraded(Interrupt::Deadline),
                    "{label}"
                );
            }
            assert_valid(&label, &inst, variant, &sol);
        }
    }
}

#[test]
fn seqdep_budgeted_matches_plain_and_degrades_cleanly() {
    let insts = [
        (
            "triangle",
            batch_setup_scheduling::gen::seqdep::triangle_violating(8, 3, 5),
        ),
        (
            "uniform",
            batch_setup_scheduling::gen::seqdep::uniform_setups(6, 2, 5),
        ),
    ];
    for (name, sd) in &insts {
        for algo in ALGOS {
            let label = format!("{name}/{algo:?}");
            let plain = solve_seqdep(sd, algo);
            let budgeted = solve_seqdep_budgeted(sd, algo, &SolveBudget::unlimited())
                .expect("unlimited budget cannot fail");
            assert_eq!(budgeted.completion, Completion::Full, "{label}");
            assert_identical(&label, &budgeted, &plain);

            let starved =
                solve_seqdep_budgeted(sd, algo, &SolveBudget::unlimited().with_work_limit(1))
                    .expect("starvation is not an error");
            assert!(
                starved.makespan <= starved.ratio_bound * starved.accepted,
                "{label}: starved bound"
            );
            assert!(
                starved.certificate.is_positive() && starved.certificate <= starved.makespan,
                "{label}: starved certificate"
            );
        }
    }
}
