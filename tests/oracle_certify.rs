//! The differential oracle suite: every algorithm, on every variant,
//! certified in exact rationals against the branch-and-bound optimum of
//! `bss-exact`.
//!
//! Two layers:
//!
//! * a **seeded** sweep over the tiny families (`bss_gen::tiny` and
//!   `bss_gen::seqdep::tiny_seqdep`) on which the oracle is *required* to
//!   close — `OPT <= achieved <= ratio_bound · OPT` for every algorithm,
//!   and the portfolio (whose exact arm engages on these shapes) returns
//!   exactly `OPT` with `ratio_bound` 1 and `certificate = OPT`;
//! * a **property** sweep over arbitrary oracle-sized instances. Closure
//!   is *not* required there — the preemptive branch-and-bound leaves an
//!   honest `lower < upper` sandwich on a fraction of random shapes — so
//!   the OPT-anchored equalities apply only when the search closes, while
//!   the sandwich invariants (`lower <= achieved`, `certificate <= upper`,
//!   valid schedules) hold unconditionally. The case count honors
//!   `BSS_PROPTEST_CASES` (CI's nightly job runs 1024 cases; the per-push
//!   default stays cheap).

use batch_setup_scheduling::exact::{solve_bss, solve_seqdep, ExactConfig, ExactStatus};
use batch_setup_scheduling::gen::seqdep::tiny_seqdep;
use batch_setup_scheduling::prelude::*;
use batch_setup_scheduling::seqdep::SeqDepInstance;
use proptest::prelude::*;

const SEEDS: u64 = 100;

/// The full algorithm roster under certification.
const ALGOS: [Algorithm; 4] = [
    Algorithm::TwoApprox,
    Algorithm::EpsilonSearch { eps_log2: 7 },
    Algorithm::ThreeHalves,
    Algorithm::Portfolio,
];

#[test]
fn bss_algorithms_certify_against_opt_on_seeded_tinies() {
    for seed in 0..SEEDS {
        let inst = batch_setup_scheduling::gen::tiny(seed);
        for variant in Variant::ALL {
            let ex = solve_bss(&inst, variant, &ExactConfig::default())
                .expect("tiny instances are within the oracle limits");
            assert_eq!(
                ex.status,
                ExactStatus::Closed,
                "{variant} seed {seed}: the oracle suite requires closure"
            );
            let opt = ex.opt().expect("closed searches expose OPT");
            assert_eq!(ex.guarantee(), Rational::ONE);
            assert!(validate(ex.schedule(), &inst, variant).is_empty());
            for algo in ALGOS {
                let sol = solve(&inst, variant, algo);
                assert!(
                    opt <= sol.makespan,
                    "{variant} {algo:?} seed {seed}: achieved {} below OPT {opt}",
                    sol.makespan
                );
                assert!(
                    sol.makespan <= sol.ratio_bound * opt,
                    "{variant} {algo:?} seed {seed}: achieved {} > {} * OPT {opt}",
                    sol.makespan,
                    sol.ratio_bound
                );
                // Certificates are genuine lower bounds on OPT.
                assert!(sol.certificate <= opt, "{variant} {algo:?} seed {seed}");
            }
            // The portfolio's exact arm engages on every tiny shape and the
            // search closes, so it returns the true optimum — exactly.
            let p = solve(&inst, variant, Algorithm::Portfolio);
            assert_eq!(p.makespan, opt, "{variant} seed {seed}");
            assert_eq!(p.ratio_bound, Rational::ONE, "{variant} seed {seed}");
            assert_eq!(p.certificate, opt, "{variant} seed {seed}");
        }
    }
}

#[test]
fn seqdep_algorithms_certify_against_opt_on_seeded_tinies() {
    for seed in 0..SEEDS {
        let sd = tiny_seqdep(seed);
        let ex = solve_seqdep(&sd, &ExactConfig::default())
            .expect("tiny seqdep instances are within the oracle limits");
        assert_eq!(ex.status, ExactStatus::Closed, "seqdep seed {seed}");
        let opt = ex.opt().expect("closed searches expose OPT");
        for algo in ALGOS {
            let sol = batch_setup_scheduling::core::solve_seqdep(&sd, algo);
            assert!(
                opt <= sol.makespan,
                "seqdep {algo:?} seed {seed}: achieved {} below OPT {opt}",
                sol.makespan
            );
            // General seqdep guarantees are a-posteriori (`accepted`, not
            // OPT, anchors the ratio) — the documented invariant plus the
            // certificate's lower-bound claim are what we can certify.
            assert!(sol.makespan <= sol.ratio_bound * sol.accepted);
            assert!(sol.certificate <= opt, "seqdep {algo:?} seed {seed}");
        }
        let p = batch_setup_scheduling::core::solve_seqdep(&sd, Algorithm::Portfolio);
        assert_eq!(p.makespan, opt, "seqdep seed {seed}");
        assert_eq!(p.ratio_bound, Rational::ONE, "seqdep seed {seed}");
        assert_eq!(p.certificate, opt, "seqdep seed {seed}");
    }
}

/// Strategy: an arbitrary instance inside the exact oracle's engagement
/// gate (n <= 12, m <= 4, c <= 5; every class non-empty).
fn arb_oracle_instance() -> impl Strategy<Value = Instance> {
    (1usize..=4, 1usize..=5).prop_flat_map(|(m, c)| {
        let setups = proptest::collection::vec(1u64..40, c..=c);
        let extra = proptest::collection::vec((0usize..c, 1u64..40), 0..=(12 - c));
        (Just(m), setups, extra).prop_map(|(m, setups, extra)| {
            let mut b = InstanceBuilder::new(m);
            let c = setups.len();
            for s in setups {
                b.add_class(s);
            }
            for k in 0..c {
                b.add_job(k, 1 + k as u64);
            }
            for (class, t) in extra {
                b.add_job(class, t);
            }
            b.build().expect("valid by construction")
        })
    })
}

/// Strategy: an arbitrary seqdep instance inside the oracle gate
/// (c <= 6, m <= 4, all costs positive).
fn arb_oracle_seqdep() -> impl Strategy<Value = SeqDepInstance> {
    (1usize..=4, 2usize..=6).prop_flat_map(|(m, c)| {
        (
            Just(m),
            proptest::collection::vec(1u64..20, c..=c),
            proptest::collection::vec(proptest::collection::vec(1u64..20, c..=c), c..=c),
            proptest::collection::vec(1u64..25, c..=c),
        )
            .prop_map(|(m, initial, mut switch, work)| {
                for (i, row) in switch.iter_mut().enumerate() {
                    row[i] = 0;
                }
                SeqDepInstance::new(m, initial, switch, work).expect("valid by construction")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary oracle-sized instances: when the search closes, every
    /// algorithm's makespan sandwiches between `OPT` and
    /// `ratio_bound · OPT` and the portfolio lands exactly on `OPT`; a
    /// non-closed search still brackets every algorithm from below and
    /// every certificate from above.
    #[test]
    fn bss_oracle_sandwich(inst in arb_oracle_instance()) {
        for variant in Variant::ALL {
            let ex = solve_bss(&inst, variant, &ExactConfig::default())
                .expect("strategy stays within the oracle limits");
            prop_assert!(ex.lower <= ex.upper);
            prop_assert!(validate(ex.schedule(), &inst, variant).is_empty());
            let closed = ex.status == ExactStatus::Closed;
            for algo in ALGOS {
                let sol = solve(&inst, variant, algo);
                // `lower <= OPT <= makespan` and `certificate <= OPT <=
                // upper` hold whether or not the search closed.
                prop_assert!(ex.lower <= sol.makespan);
                prop_assert!(sol.certificate <= ex.upper);
                if closed {
                    let opt = ex.upper;
                    prop_assert!(opt <= sol.makespan);
                    prop_assert!(sol.makespan <= sol.ratio_bound * opt);
                    prop_assert!(sol.certificate <= opt);
                }
            }
            let p = solve(&inst, variant, Algorithm::Portfolio);
            // The oracle arm engages on every gated shape: its incumbent
            // caps the portfolio and its lower bound tightens the
            // certificate even when the search does not close.
            prop_assert!(p.makespan <= ex.upper);
            prop_assert!(p.certificate >= ex.lower);
            if closed {
                prop_assert_eq!(p.makespan, ex.upper);
                prop_assert_eq!(p.ratio_bound, Rational::ONE);
            }
        }
    }

    /// The seqdep analogue, against the class-order branch-and-bound.
    #[test]
    fn seqdep_oracle_sandwich(sd in arb_oracle_seqdep()) {
        let ex = solve_seqdep(&sd, &ExactConfig::default())
            .expect("strategy stays within the oracle limits");
        prop_assert!(ex.lower <= ex.upper);
        let closed = ex.status == ExactStatus::Closed;
        for algo in ALGOS {
            let sol = batch_setup_scheduling::core::solve_seqdep(&sd, algo);
            prop_assert!(ex.lower <= sol.makespan);
            prop_assert!(sol.certificate <= ex.upper);
            if closed {
                prop_assert!(ex.upper <= sol.makespan);
                prop_assert!(sol.certificate <= ex.upper);
            }
        }
        let p = batch_setup_scheduling::core::solve_seqdep(&sd, Algorithm::Portfolio);
        prop_assert!(p.makespan <= ex.upper);
        prop_assert!(p.certificate >= ex.lower);
        if closed {
            prop_assert_eq!(p.makespan, ex.upper);
            prop_assert_eq!(p.ratio_bound, Rational::ONE);
        }
    }
}
