//! Property suite for incremental instances: **any** feasible delta
//! sequence leaves an [`IncrementalInstance`] indistinguishable from an
//! instance rebuilt from scratch — structurally (`materialize()` equality),
//! by content hash, and through the solver (the warm-start re-solve of the
//! final state is bit-identical to a cold solve of it, in everything but
//! probe counts).
//!
//! The per-push default case count is raised by the nightly pipeline via
//! `BSS_PROPTEST_CASES`.

use batch_setup_scheduling::core::{solve, solve_warm, Algorithm, WarmStart};
use batch_setup_scheduling::instance::{
    Delta, IncrementalInstance, Instance, InstanceBuilder, Variant,
};
use proptest::prelude::*;

/// A raw delta script: each step is `(selector, a, b)`, decoded against the
/// *current* state so every generated delta is feasible by construction.
type Script = Vec<(u8, u64, u64)>;

fn arb_case() -> impl Strategy<Value = (usize, Vec<u64>, Vec<(usize, u64)>, Script)> {
    (2usize..=5, 1usize..=6).prop_flat_map(|(m, c)| {
        let setups = proptest::collection::vec(1u64..40, c..=c);
        // One mandatory job per class (the model forbids empty classes),
        // then up to 18 extras in arbitrary classes.
        let mandatory = proptest::collection::vec(1u64..60, c..=c);
        let extras = proptest::collection::vec((0usize..c, 1u64..60), 0..=18);
        let script = proptest::collection::vec((0u8..3, 0u64..u64::MAX, 0u64..u64::MAX), 0..=30);
        (Just(m), setups, mandatory, extras, script).prop_map(
            |(m, setups, mandatory, extras, script)| {
                let mut jobs: Vec<(usize, u64)> = mandatory.into_iter().enumerate().collect();
                jobs.extend(extras);
                (m, setups, jobs, script)
            },
        )
    })
}

/// Decodes one script step against the current state, or `None` when no
/// feasible delta of that kind exists (e.g. a removal with every class a
/// singleton).
fn decode(step: (u8, u64, u64), inc: &IncrementalInstance) -> Option<Delta> {
    let (sel, a, b) = step;
    let n = inc.num_jobs();
    match sel {
        0 => Some(Delta::AddJob {
            class: (a as usize) % inc.num_classes(),
            time: 1 + b % 50,
        }),
        1 => {
            // A removal must keep its class non-empty: rotate from the
            // drawn position to the first removable job.
            let start = (a as usize) % n;
            (0..n)
                .map(|off| (start + off) % n)
                .find(|&j| inc.class_count(inc.jobs()[j].class) > 1)
                .map(|job| Delta::RemoveJob { job })
        }
        _ => Some(Delta::Retime {
            job: (a as usize) % n,
            time: 1 + b % 50,
        }),
    }
}

/// Rebuilds the instance a mirror `(setups, jobs)` pair describes from
/// scratch through the public builder.
fn rebuild(m: usize, setups: &[u64], jobs: &[(usize, u64)]) -> Instance {
    let mut builder = InstanceBuilder::new(m);
    for &s in setups {
        builder.add_class(s);
    }
    for &(class, time) in jobs {
        builder.add_job(class, time);
    }
    builder.build().expect("mirror states are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every delta the incremental state materializes to exactly the
    /// instance a from-scratch rebuild produces, and its cached content
    /// hash equals the rebuilt instance's.
    #[test]
    fn any_delta_sequence_materializes_to_the_rebuilt_instance(
        (m, setups, jobs, script) in arb_case()
    ) {
        let base = rebuild(m, &setups, &jobs);
        let mut inc = IncrementalInstance::new(&base);
        // The naive mirror applies the same deltas to a plain job list.
        let mut mirror: Vec<(usize, u64)> = jobs.clone();
        for step in script {
            let Some(delta) = decode(step, &inc) else { continue };
            inc.apply(delta).expect("decoded deltas are feasible");
            match delta {
                Delta::AddJob { class, time } => mirror.push((class, time)),
                Delta::RemoveJob { job } => { mirror.remove(job); }
                Delta::Retime { job, time } => mirror[job].1 = time,
            }
            let rebuilt = rebuild(m, &setups, &mirror);
            prop_assert_eq!(&inc.materialize(), &rebuilt);
            prop_assert_eq!(inc.content_hash(), rebuilt.content_hash());
            prop_assert_eq!(inc.num_jobs(), mirror.len());
            prop_assert_eq!(
                u128::from(inc.total_load_once()),
                setups.iter().map(|&s| u128::from(s)).sum::<u128>()
                    + mirror.iter().map(|&(_, t)| u128::from(t)).sum::<u128>()
            );
        }
    }

    /// Warm-starting the final state's solve from the *base* state's dual
    /// bracket (widened by the accumulated load shift) is bit-identical to
    /// a cold solve of the final state in every certified field; only the
    /// probe count may differ.
    #[test]
    fn warm_resolve_of_the_final_state_matches_the_cold_solve(
        (m, setups, jobs, script) in arb_case()
    ) {
        let base = rebuild(m, &setups, &jobs);
        let mut inc = IncrementalInstance::new(&base);
        for step in script {
            if let Some(delta) = decode(step, &inc) {
                inc.apply(delta).expect("decoded deltas are feasible");
            }
        }
        let final_state = inc.materialize();
        let algo = Algorithm::EpsilonSearch { eps_log2: 6 };
        for variant in Variant::ALL {
            let seed = solve(&base, variant, algo);
            let hint = WarmStart::of(&seed).widen_by_load_shift(
                u128::from(IncrementalInstance::new(&base).total_load_once()),
                u128::from(inc.total_load_once()),
                m,
            );
            let cold = solve(&final_state, variant, algo);
            let (warm, stats) = solve_warm(&final_state, variant, algo, &hint);
            prop_assert!(stats.warmed);
            prop_assert_eq!(warm.makespan, cold.makespan);
            prop_assert_eq!(warm.accepted, cold.accepted);
            prop_assert_eq!(warm.certificate, cold.certificate);
            prop_assert_eq!(warm.ratio_bound, cold.ratio_bound);
            prop_assert_eq!(warm.completion, cold.completion);
            prop_assert_eq!(warm.schedule(), cold.schedule());
        }
    }
}
