//! Structural assertions tied to individual lemmas of the paper, checked on
//! the algorithms' actual outputs.

use batch_setup_scheduling::core::{preemptive, splittable, Trace};
use batch_setup_scheduling::prelude::*;
use std::collections::{HashMap, HashSet};

fn tmin(inst: &Instance, v: Variant) -> Rational {
    LowerBounds::of(inst).tmin(v)
}

/// Lemma 2: in any `T`-feasible schedule, jobs of *different expensive
/// classes* sit on different machines. Our splittable dual's output keeps
/// expensive classes (setup > T/2) machine-disjoint.
#[test]
fn lemma2_expensive_classes_machine_disjoint() {
    for seed in 0..15 {
        let inst = batch_setup_scheduling::gen::expensive_setups(40, 5, seed);
        let t = tmin(&inst, Variant::Splittable) * 2u64;
        let Some(cs) = splittable::dual(&inst, t) else {
            continue;
        };
        let s = cs.expand().expect("in range");
        let half = t.half();
        let mut machine_exp_class: HashMap<usize, usize> = HashMap::new();
        for p in s.placements() {
            let class = p.kind.class();
            if Rational::from(inst.setup(class)) > half {
                if let Some(&other) = machine_exp_class.get(&p.machine) {
                    assert_eq!(
                        other, class,
                        "machine {} hosts two expensive classes (seed {seed})",
                        p.machine
                    );
                } else {
                    machine_exp_class.insert(p.machine, class);
                }
            }
        }
    }
}

/// Note 1: the preemptive optimum is at least `max_i (s_i + t^(i)_max)`; no
/// algorithm may beat it.
#[test]
fn note1_no_schedule_beats_setup_plus_job() {
    for seed in 0..15 {
        let inst = batch_setup_scheduling::gen::uniform(40, 6, 8, seed);
        let bound = Rational::from(inst.max_setup_plus_tmax());
        for variant in [Variant::Preemptive, Variant::NonPreemptive] {
            for algo in [
                Algorithm::TwoApprox,
                Algorithm::ThreeHalves,
                Algorithm::Portfolio,
            ] {
                let sol = solve(&inst, variant, algo);
                assert!(
                    sol.makespan >= bound,
                    "{variant} {algo:?} (seed {seed}): makespan {} below Note 1 bound {}",
                    sol.makespan,
                    bound
                );
            }
        }
    }
}

/// The band discipline of Algorithm 3 (Lemma 4 / Note 3 machinery): pieces
/// placed at the *bottom* of large machines stay below `T/2`, and the
/// obligatory pieces of the same job in the nice instance start at or above
/// `T/2` — this is what makes split jobs preemptive-feasible.
#[test]
fn algorithm3_band_discipline() {
    let inst = batch_setup_scheduling::gen::paper::fig3_general_preemptive();
    let t_min = tmin(&inst, Variant::Preemptive);
    // Probe a few accepted guesses.
    for k in [22i128, 26, 30, 36, 40] {
        let t = t_min * Rational::new(k, 20);
        let Some(s) = preemptive::dual(
            &inst,
            t,
            preemptive::CountMode::AlphaPrime,
            &mut Trace::disabled(),
        ) else {
            continue;
        };
        let half = t.half();
        // For every job with pieces on several machines, pieces must not
        // overlap in time (validator checks), and if one piece lies fully
        // below T/2 the other must start at >= T/2 (band separation).
        let mut pieces: HashMap<usize, Vec<(Rational, Rational)>> = HashMap::new();
        for p in s.placements() {
            if let ItemKind::Piece { job, .. } = p.kind {
                pieces.entry(job).or_default().push((p.start, p.end()));
            }
        }
        for (job, ivs) in pieces {
            if ivs.len() < 2 {
                continue;
            }
            let below: Vec<_> = ivs.iter().filter(|(_, e)| *e <= half).collect();
            let above: Vec<_> = ivs.iter().filter(|(s, _)| *s >= half).collect();
            assert_eq!(
                below.len() + above.len(),
                ivs.len(),
                "job {job}: piece straddles T/2 while split across machines (T={t})"
            );
        }
    }
}

/// The splittable dual uses exactly `β_i` machines per expensive class
/// (Lemma 1's bound, met with equality by construction).
#[test]
fn theorem7_uses_beta_machines_per_expensive_class() {
    use batch_setup_scheduling::core::classify::{beta, classify};
    for seed in 0..10 {
        let inst = batch_setup_scheduling::gen::expensive_setups(30, 6, seed);
        let t = tmin(&inst, Variant::Splittable) * 2u64;
        let Some(cs) = splittable::dual(&inst, t) else {
            continue;
        };
        let s = cs.expand().expect("in range");
        let cls = classify(&inst, t);
        for i in cls.iexp() {
            let machines: HashSet<usize> = s
                .placements()
                .iter()
                .filter(|p| !p.kind.is_setup() && p.kind.class() == i)
                .map(|p| p.machine)
                .collect();
            assert_eq!(machines.len(), beta(&inst, t, i), "class {i} (seed {seed})");
        }
    }
}

/// Compactness (the paper's "weaker definition of schedules"): the splittable
/// 3/2 algorithm's native output size must not grow with `m`.
#[test]
fn compact_output_independent_of_machine_count() {
    let mut sizes = Vec::new();
    for &m in &[16usize, 256, 4096] {
        let mut b = InstanceBuilder::new(m);
        b.add_batch(10, &[200_000]);
        b.add_batch(2, &[7, 7, 7]);
        let inst = b.build().unwrap();
        let sol = solve(&inst, Variant::Splittable, Algorithm::ThreeHalves);
        sizes.push(sol.compact().expect("splittable").stored_items());
    }
    assert!(
        sizes[2] <= sizes[0] + 8,
        "stored items grew with m: {sizes:?}"
    );
}
