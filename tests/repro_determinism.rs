//! Determinism of the repro pipeline's golden (deterministic) artifacts:
//! the committed files must depend only on the grid and the seeds — never
//! on run-to-run state, the thread count of the parallel sweeps, or whether
//! timing measurement is enabled.

use bss_bench::repro::{manifest, render_manifest, studies, Artifact, Grid, ReproConfig};

fn cfg(threads: Option<usize>, timing: bool) -> ReproConfig {
    // Honour BSS_REPRO_GRID like the golden suite (default fast): nightly's
    // full-grid run must prove determinism for the full-grid-only cells too.
    let mut cfg = ReproConfig::from_env(Grid::Fast).expect("BSS_REPRO_GRID must be fast|full");
    cfg.threads = threads;
    cfg.timing = timing;
    cfg
}

fn deterministic_bytes(a: &Artifact) -> Vec<(&str, &str)> {
    a.deterministic
        .iter()
        .map(|f| (f.name.as_str(), f.contents.as_str()))
        .collect()
}

#[test]
fn every_study_is_deterministic_across_runs_and_thread_counts() {
    for study in studies() {
        let base = (study.run)(&cfg(None, false));
        assert!(
            !base.deterministic.is_empty(),
            "{}: no deterministic files",
            study.name
        );

        // Same seed, second run: byte-identical deterministic artifacts.
        let rerun = (study.run)(&cfg(None, false));
        assert_eq!(
            deterministic_bytes(&base),
            deterministic_bytes(&rerun),
            "{}: rerun differs",
            study.name
        );

        // The sweeps fan out over `parallel_map`; pin contrasting worker
        // counts (sequential vs oversubscribed) and require the same bytes —
        // results must come back in input order, values unchanged.
        let one = (study.run)(&cfg(Some(1), false));
        let many = (study.run)(&cfg(Some(3), false));
        assert_eq!(
            deterministic_bytes(&base),
            deterministic_bytes(&one),
            "{}: threads=1 differs",
            study.name
        );
        assert_eq!(
            deterministic_bytes(&one),
            deterministic_bytes(&many),
            "{}: threads=3 differs",
            study.name
        );

        // Timing measurement must not leak into the deterministic part
        // (that is the whole point of the split).
        let timed = (study.run)(&cfg(Some(2), true));
        assert_eq!(
            deterministic_bytes(&base),
            deterministic_bytes(&timed),
            "{}: timing on/off changes deterministic files",
            study.name
        );
    }
}

#[test]
fn manifest_is_deterministic_and_ignores_timing_knobs() {
    let run = |threads, timing| {
        let c = cfg(threads, timing);
        let artifacts: Vec<Artifact> = studies().iter().map(|s| (s.run)(&c)).collect();
        render_manifest(&manifest(&c, &artifacts))
    };
    let base = run(None, false);
    assert_eq!(base, run(Some(1), false));
    assert_eq!(base, run(Some(3), true));
}
