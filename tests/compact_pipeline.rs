//! Properties of the compact-first pipeline: streaming expansion is
//! bit-identical to the old expand-then-absorb path, and the compact-aware
//! validator agrees with the explicit walk — on acceptance and on every
//! `Violation` family.

use batch_setup_scheduling::prelude::*;
use batch_setup_scheduling::schedule::{
    validate_compact, CompactSchedule, ConfigItem, MachineConfig, PlacementSink,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn r(v: i128) -> Rational {
    Rational::from_int(v)
}

/// A solver-produced compact schedule plus its instance.
fn solved_compact(seed: u64) -> (Instance, CompactSchedule) {
    let inst = batch_setup_scheduling::gen::uniform(50, 7, 6, seed);
    let sol = solve(&inst, Variant::Splittable, Algorithm::ThreeHalves);
    let compact = sol.compact().expect("splittable is compact").clone();
    (inst, compact)
}

/// `expand_into` must produce exactly what the historical
/// `base.absorb(cs.expand())` double-copy produced — same placements, same
/// order — for solver outputs and for hand-crafted groups, over a non-empty
/// base schedule.
#[test]
fn expand_into_is_bit_identical_to_expand_then_absorb() {
    for seed in 0..25 {
        let (_, compact) = solved_compact(seed);

        // A non-trivial base: placements that were already in the sink.
        let mut base = Schedule::new(compact.machines());
        base.push_setup(0, r(0), r(1), 0);
        base.push_piece(0, r(1), r(2), 0, 0);

        // Old path: materialize, then copy.
        let mut old = base.clone();
        old.absorb(compact.expand().expect("in range"));

        // New path: stream once.
        let mut new = base.clone();
        compact.expand_into(&mut new).expect("in range");

        assert_eq!(old, new, "seed {seed}");
        // And into a bare placement buffer, matching the schedule's tail.
        let mut buf = Vec::new();
        compact.expand_into(&mut buf).expect("in range");
        assert_eq!(&new.placements()[base.placements().len()..], &buf[..]);
    }
}

/// The compact validator accepts exactly when the explicit walk accepts the
/// expansion — across all variants, on solver outputs of both compact-native
/// algorithms, including the all-expensive adversarial family (every class
/// wrapped over its β_i machines; the cheap path never fires).
#[test]
fn validators_agree_on_acceptance() {
    for seed in 0..20 {
        let inst = if seed % 2 == 0 {
            batch_setup_scheduling::gen::uniform(60, 8, 10, seed)
        } else {
            batch_setup_scheduling::gen::all_expensive(60, 4, 10, seed)
        };
        for algo in [Algorithm::ThreeHalves, Algorithm::TwoApprox] {
            let sol = solve(&inst, Variant::Splittable, algo);
            let compact = sol.compact().expect("splittable is compact");
            let expanded = compact.expand().expect("in range");
            for variant in Variant::ALL {
                let compact_ok = validate_compact(compact, &inst, variant).is_empty();
                let explicit_ok = validate(&expanded, &inst, variant).is_empty();
                assert_eq!(compact_ok, explicit_ok, "seed {seed} {algo:?} {variant}");
            }
        }
    }
}

/// Discriminant-level family of a violation, for set comparison.
fn family(v: &Violation) -> &'static str {
    match v {
        Violation::MachineOutOfRange { .. } => "MachineOutOfRange",
        Violation::UnknownJob { .. } => "UnknownJob",
        Violation::UnknownClass { .. } => "UnknownClass",
        Violation::TimeOverflow => "TimeOverflow",
        Violation::NegativeStart { .. } => "NegativeStart",
        Violation::Overlap { .. } => "Overlap",
        Violation::MissingSetup { .. } => "MissingSetup",
        Violation::WrongSetupLength { .. } => "WrongSetupLength",
        Violation::WrongPieceClass { .. } => "WrongPieceClass",
        Violation::WrongJobTotal { .. } => "WrongJobTotal",
        Violation::JobSplit { .. } => "JobSplit",
        Violation::JobParallel { .. } => "JobParallel",
    }
}

fn families(vs: &[Violation]) -> std::collections::BTreeSet<&'static str> {
    vs.iter().map(family).collect()
}

/// Every violation family a mutation injects must be reported by *both*
/// validators (the compact one directly on the groups, the explicit one on
/// the expansion), and neither may report families the other misses.
#[test]
fn validators_agree_on_every_violation_family() {
    let mut rng = StdRng::seed_from_u64(7);
    // Mutations keyed by the family they are guaranteed to inject. Each
    // returns the variant to validate under.
    type Mutation = fn(&Instance, &mut CompactSchedule, &mut StdRng) -> Variant;
    let mutations: &[(&str, Mutation)] = &[
        ("UnknownJob", |_, cs, _| {
            cs.push_group(
                0,
                1,
                MachineConfig {
                    items: vec![ConfigItem {
                        start: r(10_000),
                        len: r(1),
                        kind: ItemKind::Piece {
                            job: 99_999,
                            class: 0,
                        },
                    }],
                },
            );
            Variant::Splittable
        }),
        ("UnknownClass", |_, cs, _| {
            cs.push_group(
                0,
                1,
                MachineConfig {
                    items: vec![ConfigItem {
                        start: r(10_000),
                        len: r(1),
                        kind: ItemKind::Setup(99_999),
                    }],
                },
            );
            Variant::Splittable
        }),
        ("NegativeStart", |inst, cs, _| {
            cs.push_group(
                0,
                1,
                MachineConfig {
                    items: vec![ConfigItem {
                        start: r(-5),
                        len: Rational::from(inst.setup(0)),
                        kind: ItemKind::Setup(0),
                    }],
                },
            );
            Variant::Splittable
        }),
        ("WrongSetupLength", |inst, cs, _| {
            cs.push_group(
                0,
                1,
                MachineConfig {
                    items: vec![ConfigItem {
                        start: r(10_000),
                        len: Rational::from(inst.setup(0) + 1),
                        kind: ItemKind::Setup(0),
                    }],
                },
            );
            Variant::Splittable
        }),
        ("WrongPieceClass", |inst, cs, _| {
            let job = 0;
            let wrong = (inst.job(job).class + 1) % inst.num_classes();
            cs.push_group(
                0,
                1,
                MachineConfig {
                    items: vec![ConfigItem {
                        start: r(10_000),
                        len: r(1),
                        kind: ItemKind::Piece { job, class: wrong },
                    }],
                },
            );
            Variant::Splittable
        }),
        ("WrongJobTotal", |inst, cs, _| {
            // Extra covered piece of job 0, far in the future: overlap-free,
            // setup-covered, but the job total is now wrong.
            let class = inst.job(0).class;
            cs.push_group(
                0,
                1,
                MachineConfig {
                    items: vec![
                        ConfigItem {
                            start: r(10_000),
                            len: Rational::from(inst.setup(class)),
                            kind: ItemKind::Setup(class),
                        },
                        ConfigItem {
                            start: r(10_000) + inst.setup(class),
                            len: r(1),
                            kind: ItemKind::Piece { job: 0, class },
                        },
                    ],
                },
            );
            Variant::Splittable
        }),
        ("Overlap", |_, cs, rng| {
            // Duplicate a random group onto the same machines: every item
            // collides with itself.
            let g = cs.groups()[rng.gen_range(0..cs.groups().len())].clone();
            cs.push_group(g.first_machine, g.count, g.config);
            Variant::Splittable
        }),
        ("MissingSetup", |inst, cs, _| {
            // A naked piece on an otherwise empty far machine region… there
            // is none, so reuse machine 0 far in the future: the machine was
            // configured earlier, but for class `c-1` pick a class that
            // differs from machine 0's last configuration by adding a
            // *different-class* naked piece after a foreign setup.
            let class = inst.job(0).class;
            let other = (class + 1) % inst.num_classes();
            cs.push_group(
                0,
                1,
                MachineConfig {
                    items: vec![
                        ConfigItem {
                            start: r(20_000),
                            len: Rational::from(inst.setup(other)),
                            kind: ItemKind::Setup(other),
                        },
                        ConfigItem {
                            start: r(20_000) + inst.setup(other),
                            len: r(1),
                            kind: ItemKind::Piece { job: 0, class },
                        },
                    ],
                },
            );
            Variant::Splittable
        }),
        ("MachineOutOfRange", |inst, cs, _| {
            cs.push_group(
                inst.machines(),
                1,
                MachineConfig {
                    items: vec![ConfigItem {
                        start: r(0),
                        len: Rational::from(inst.setup(0)),
                        kind: ItemKind::Setup(0),
                    }],
                },
            );
            Variant::Splittable
        }),
        ("TimeOverflow", |_, cs, _| {
            cs.push_group(
                0,
                1,
                MachineConfig {
                    items: vec![ConfigItem {
                        start: Rational::new(1i128 << 94, 1),
                        len: r(1),
                        kind: ItemKind::Setup(0),
                    }],
                },
            );
            Variant::Splittable
        }),
        ("JobSplit", |_, _, _| Variant::NonPreemptive),
        ("JobParallel", |_, cs, _| {
            // Duplicate a piece-carrying group in place: every duplicated
            // piece runs in the same time window as its original, which the
            // preemptive rule must flag (both validators also report the
            // overlap and the broken totals — family sets still agree).
            let g = cs
                .groups()
                .iter()
                .find(|g| g.config.items.iter().any(|it| !it.kind.is_setup()))
                .expect("solver output has pieces")
                .clone();
            cs.push_group(g.first_machine, g.count, g.config);
            Variant::Preemptive
        }),
    ];

    for (name, mutate) in mutations {
        let mut checked = 0;
        for seed in 0..12 {
            let (inst, mut cs) = solved_compact(seed);
            if inst.num_classes() < 2 {
                continue;
            }
            let variant = mutate(&inst, &mut cs, &mut rng);
            if *name == "JobSplit" {
                // Splittable outputs routinely split jobs; the mutation is
                // the *variant*, not the schedule.
                let has_split = {
                    let mut counts = vec![0u32; inst.num_jobs()];
                    for g in cs.groups() {
                        for it in &g.config.items {
                            if let ItemKind::Piece { job, .. } = it.kind {
                                counts[job] += g.count as u32;
                            }
                        }
                    }
                    counts.iter().any(|&c| c > 1)
                };
                if !has_split {
                    continue;
                }
            }
            let compact_vs = validate_compact(&cs, &inst, variant);
            assert!(
                families(&compact_vs).contains(name),
                "{name} (seed {seed}): compact validator missed it: {compact_vs:?}"
            );
            match cs.expand() {
                Ok(expanded) => {
                    let explicit_vs = validate(&expanded, &inst, variant);
                    assert!(
                        families(&explicit_vs).contains(name),
                        "{name} (seed {seed}): explicit validator missed it: {explicit_vs:?}"
                    );
                    // Family-level agreement in both directions.
                    assert_eq!(
                        families(&compact_vs),
                        families(&explicit_vs),
                        "{name} (seed {seed}): family sets diverge"
                    );
                }
                Err(e) => {
                    // Expansion itself reports the same family (out-of-range
                    // groups cannot be materialized).
                    assert_eq!(family(&e), *name, "{name} (seed {seed})");
                }
            }
            checked += 1;
        }
        assert!(
            checked >= 6,
            "{name}: mutation rarely applicable ({checked})"
        );
    }
}

/// A `PlacementSink` is anything — prove the trait composes by computing
/// stats on the fly without materializing placements.
#[test]
fn custom_sinks_compose() {
    struct LoadCounter {
        total: Rational,
        placements: usize,
    }
    impl PlacementSink for LoadCounter {
        fn place(&mut self, p: Placement) {
            self.total += p.len;
            self.placements += 1;
        }
    }
    let (_, compact) = solved_compact(3);
    let mut counter = LoadCounter {
        total: Rational::ZERO,
        placements: 0,
    };
    compact.expand_into(&mut counter).expect("in range");
    let expanded = compact.expand().expect("in range");
    assert_eq!(counter.placements, expanded.placements().len());
    let expected: Rational = expanded
        .placements()
        .iter()
        .map(|p| p.len)
        .fold(Rational::ZERO, |a, b| a + b);
    assert_eq!(counter.total, expected);
}
