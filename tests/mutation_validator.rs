//! Failure-injection tests: the validators must catch every class of
//! corruption we can inflict on a known-good schedule.
//!
//! This is the safety net under every other test in the repository — if the
//! validators were lenient, the "all algorithms validate" suites would prove
//! nothing.

use batch_setup_scheduling::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn solved(seed: u64) -> (Instance, Schedule, Variant) {
    let variants = Variant::ALL;
    let inst = batch_setup_scheduling::gen::uniform(40, 6, 4, seed);
    let variant = variants[(seed % 3) as usize];
    let sol = solve(&inst, variant, Algorithm::ThreeHalves);
    (inst, sol.into_schedule(), variant)
}

#[test]
fn deleting_a_piece_is_caught() {
    for seed in 0..20 {
        let (inst, mut s, variant) = solved(seed);
        let idx = s
            .placements()
            .iter()
            .position(|p| !p.kind.is_setup())
            .expect("has pieces");
        s.placements_mut().remove(idx);
        assert!(
            validate(&s, &inst, variant)
                .iter()
                .any(|v| matches!(v, Violation::WrongJobTotal { .. })),
            "seed {seed}"
        );
    }
}

#[test]
fn deleting_a_setup_is_caught() {
    for seed in 0..20 {
        let (inst, mut s, variant) = solved(seed);
        let idx = s
            .placements()
            .iter()
            .position(|p| p.kind.is_setup())
            .expect("has setups");
        s.placements_mut().remove(idx);
        // Removing a setup either uncovers a run or (if it was trailing /
        // redundant) changes nothing structurally; the algorithms never emit
        // redundant setups, so a violation must surface.
        assert!(
            !validate(&s, &inst, variant).is_empty(),
            "seed {seed}: removing a setup went unnoticed"
        );
    }
}

#[test]
fn shrinking_a_piece_is_caught() {
    for seed in 0..20 {
        let (inst, mut s, variant) = solved(seed);
        let idx = s
            .placements()
            .iter()
            .position(|p| !p.kind.is_setup() && p.len > Rational::ONE)
            .expect("has a long piece");
        s.placements_mut()[idx].len -= Rational::new(1, 3);
        assert!(
            validate(&s, &inst, variant)
                .iter()
                .any(|v| matches!(v, Violation::WrongJobTotal { .. })),
            "seed {seed}"
        );
    }
}

#[test]
fn overlapping_shift_is_caught() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut caught = 0;
    for seed in 0..30 {
        let (inst, mut s, variant) = solved(seed);
        // Pick a machine with >= 2 placements and shift a later one down
        // into its predecessor.
        let machine = s.placements()[rng.gen_range(0..s.placements().len())].machine;
        let tl = s.machine_timeline(machine);
        if tl.len() < 2 {
            continue;
        }
        let victim = tl[1];
        let idx = s
            .placements()
            .iter()
            .position(|p| p == &victim)
            .expect("present");
        s.placements_mut()[idx].start = tl[0].start; // collide with first item
        let violations = validate(&s, &inst, variant);
        assert!(!violations.is_empty(), "seed {seed}: overlap unnoticed");
        caught += 1;
    }
    assert!(caught >= 20, "mutation rarely applicable: {caught}");
}

#[test]
fn moving_piece_to_unset_machine_is_caught() {
    for seed in 0..20 {
        let (inst, mut s, variant) = solved(seed);
        // Find an empty-ish target machine lacking this class's setup at the
        // piece's time; machine count is 4, schedules rarely use a machine
        // for *every* class, so search for a violating move.
        let mut mutated = false;
        let placements = s.placements().to_vec();
        for (idx, p) in placements.iter().enumerate() {
            if p.kind.is_setup() {
                continue;
            }
            for target in 0..inst.machines() {
                if target == p.machine {
                    continue;
                }
                let class = p.kind.class();
                let covered = s
                    .machine_timeline(target)
                    .iter()
                    .any(|q| q.kind == ItemKind::Setup(class));
                if !covered {
                    s.placements_mut()[idx].machine = target;
                    mutated = true;
                    break;
                }
            }
            if mutated {
                break;
            }
        }
        if mutated {
            assert!(
                validate(&s, &inst, variant).iter().any(|v| matches!(
                    v,
                    Violation::MissingSetup { .. } | Violation::Overlap { .. }
                )),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn relabeling_piece_class_is_caught() {
    for seed in 0..20 {
        let (inst, mut s, variant) = solved(seed);
        if inst.num_classes() < 2 {
            continue;
        }
        let idx = s
            .placements()
            .iter()
            .position(|p| !p.kind.is_setup())
            .expect("has pieces");
        if let ItemKind::Piece { job, class } = s.placements()[idx].kind {
            let other = (class + 1) % inst.num_classes();
            s.placements_mut()[idx].kind = ItemKind::Piece { job, class: other };
            assert!(
                validate(&s, &inst, variant)
                    .iter()
                    .any(|v| matches!(v, Violation::WrongPieceClass { .. })),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn stretching_a_setup_is_caught() {
    for seed in 0..20 {
        let (inst, mut s, variant) = solved(seed);
        let idx = s
            .placements()
            .iter()
            .position(|p| p.kind.is_setup())
            .expect("has setups");
        s.placements_mut()[idx].len += Rational::ONE;
        assert!(
            validate(&s, &inst, variant).iter().any(|v| matches!(
                v,
                Violation::WrongSetupLength { .. } | Violation::Overlap { .. }
            )),
            "seed {seed}"
        );
    }
}

#[test]
fn duplicating_a_piece_is_caught() {
    for seed in 0..20 {
        let (inst, mut s, variant) = solved(seed);
        let p = *s
            .placements()
            .iter()
            .find(|p| !p.kind.is_setup())
            .expect("has pieces");
        s.push(p); // same place: overlap AND wrong job total
        let violations = validate(&s, &inst, variant);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::WrongJobTotal { .. })),
            "seed {seed}"
        );
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::Overlap { .. })),
            "seed {seed}"
        );
    }
}

#[test]
fn splitting_a_nonpreemptive_job_is_caught() {
    for seed in 0..20 {
        let inst = batch_setup_scheduling::gen::uniform(40, 6, 4, seed);
        let sol = solve(&inst, Variant::NonPreemptive, Algorithm::ThreeHalves);
        let mut s = sol.into_schedule();
        let idx = s
            .placements()
            .iter()
            .position(|p| !p.kind.is_setup() && p.len > Rational::ONE)
            .expect("has a splittable piece");
        let p = s.placements()[idx];
        let half = p.len.half();
        s.placements_mut()[idx].len = half;
        s.push(Placement::new(
            p.machine,
            p.start + half,
            p.len - half,
            p.kind,
        ));
        // Still contiguous and load-conserving — but split in two pieces:
        // only the non-preemptive validator may complain.
        assert!(validate(&s, &inst, Variant::NonPreemptive)
            .iter()
            .any(|v| matches!(v, Violation::JobSplit { .. })));
        assert!(validate(&s, &inst, Variant::Preemptive).is_empty());
        assert!(validate(&s, &inst, Variant::Splittable).is_empty());
    }
}
