//! Property-based integration tests: arbitrary instances through the full
//! public API, with feasibility and guarantee invariants.

use batch_setup_scheduling::prelude::*;
use proptest::prelude::*;

/// Strategy: a random valid instance (n <= 40, c <= 8, m <= 6).
fn arb_instance() -> impl Strategy<Value = Instance> {
    (1usize..=6, 1usize..=8, 1u64..=10_000).prop_flat_map(|(m, c, _)| {
        let classes = proptest::collection::vec(1u64..60, c..=c);
        let jobs = proptest::collection::vec((0usize..c, 1u64..80), c..=40);
        (Just(m), classes, jobs).prop_map(|(m, setups, jobs)| {
            let mut b = InstanceBuilder::new(m);
            let c = setups.len();
            for s in setups {
                b.add_class(s);
            }
            // Guarantee non-empty classes.
            for k in 0..c {
                b.add_job(k, 1 + k as u64);
            }
            for (class, t) in jobs {
                b.add_job(class, t);
            }
            b.build().expect("valid by construction")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every algorithm on every variant yields a feasible schedule meeting
    /// its stated guarantee relative to the accepted guess.
    #[test]
    fn all_solutions_feasible_and_bounded(inst in arb_instance()) {
        for variant in Variant::ALL {
            for algo in [
                Algorithm::TwoApprox,
                Algorithm::EpsilonSearch { eps_log2: 5 },
                Algorithm::ThreeHalves,
            ] {
                let sol = solve(&inst, variant, algo);
                let violations = validate(sol.schedule(), &inst, variant);
                prop_assert!(violations.is_empty(), "{variant} {algo:?}: {violations:?}");
                prop_assert!(
                    sol.makespan <= sol.ratio_bound * sol.accepted,
                    "{variant} {algo:?}: {} > {} * {}",
                    sol.makespan, sol.ratio_bound, sol.accepted
                );
                // The guess always sits in the certified window.
                let t_min = LowerBounds::of(&inst).tmin(variant);
                prop_assert!(sol.accepted >= t_min.min(sol.makespan));
                prop_assert!(sol.accepted <= t_min * 2u64);
                prop_assert!(sol.certificate <= sol.makespan);
            }
        }
    }

    /// The splittable dual's acceptance is monotone in T (the property the
    /// Class-Jumping final case analysis rests on).
    #[test]
    fn splittable_acceptance_monotone(inst in arb_instance(), k in 1i128..40) {
        use batch_setup_scheduling::core::splittable;
        let t_min = LowerBounds::of(&inst).tmin(Variant::Splittable);
        let t_lo = t_min * Rational::new(k, 20);
        let t_hi = t_lo * Rational::new(21, 20);
        if splittable::accepts(&inst, t_lo) {
            prop_assert!(splittable::accepts(&inst, t_hi));
        }
    }

    /// Total scheduled piece time equals total processing time (load
    /// conservation through every pipeline).
    #[test]
    fn load_conservation(inst in arb_instance()) {
        for variant in Variant::ALL {
            let sol = solve(&inst, variant, Algorithm::ThreeHalves);
            let placed: Rational = sol
                .schedule()
                .placements()
                .iter()
                .filter(|p| !p.kind.is_setup())
                .map(|p| p.len)
                .fold(Rational::ZERO, |a, b| a + b);
            prop_assert_eq!(placed, Rational::from(inst.total_proc()));
        }
    }

    /// Probes of the searches stay logarithmic (regression guard on the
    /// near-linear running-time claims).
    #[test]
    fn search_probe_budgets(inst in arb_instance()) {
        let eps = solve(&inst, Variant::Splittable, Algorithm::EpsilonSearch { eps_log2: 10 });
        prop_assert!(eps.probes <= 14, "eps probes {}", eps.probes);
        let jump = solve(&inst, Variant::Splittable, Algorithm::ThreeHalves);
        // O(log c + log m) probes with small constants.
        prop_assert!(jump.probes <= 120, "jump probes {}", jump.probes);
        let nonp = solve(&inst, Variant::NonPreemptive, Algorithm::ThreeHalves);
        // ⌈log2 T_min⌉ + 2 probes.
        prop_assert!(nonp.probes <= 64, "integer probes {}", nonp.probes);
    }

    /// Scaling all times by a constant scales the solution makespan by the
    /// same constant (the algorithms are scale-free).
    #[test]
    fn scale_invariance(inst in arb_instance(), factor in 2u64..5) {
        let scaled = inst.scaled(factor).expect("valid");
        for variant in [Variant::Splittable, Variant::Preemptive] {
            let a = solve(&inst, variant, Algorithm::ThreeHalves);
            let s = solve(&scaled, variant, Algorithm::ThreeHalves);
            prop_assert_eq!(
                s.makespan,
                a.makespan * factor,
                "{} scaling", variant
            );
        }
    }

    /// Cross-variant dominance `split <= pmtn <= nonp` on the adversarial
    /// generator families: Δ-wide processing times, `c ≈ m` contention, and
    /// all-expensive setups (every class setup above the mean load).
    #[test]
    fn dominance_on_adversarial_families(
        seed in 0u64..1_000_000,
        family in 0u8..3,
        m in 2usize..8,
    ) {
        let inst = match family {
            1 => batch_setup_scheduling::gen::wide_delta(60, 8, m, 1 << 16, seed),
            2 => batch_setup_scheduling::gen::all_expensive(60, (m + 1) / 2, m + 1, seed),
            _ => batch_setup_scheduling::gen::contended(60, m, m, seed),
        };
        let split = solve(&inst, Variant::Splittable, Algorithm::ThreeHalves);
        let pmtn = solve(&inst, Variant::Preemptive, Algorithm::ThreeHalves);
        let nonp = solve(&inst, Variant::NonPreemptive, Algorithm::ThreeHalves);
        prop_assert!(split.certificate <= pmtn.makespan);
        prop_assert!(pmtn.certificate <= nonp.makespan);
        prop_assert!(split.certificate <= nonp.makespan);
        prop_assert!(validate(nonp.schedule(), &inst, Variant::Splittable).is_empty());
        prop_assert!(validate(pmtn.schedule(), &inst, Variant::Splittable).is_empty());
    }

    /// The compact-first pipeline invariants hold on arbitrary instances:
    /// streaming expansion equals materialize-then-copy, and the compact
    /// validator agrees with the explicit walk.
    #[test]
    fn compact_pipeline_equivalences(inst in arb_instance()) {
        use batch_setup_scheduling::schedule::validate_compact;
        let sol = solve(&inst, Variant::Splittable, Algorithm::ThreeHalves);
        let compact = sol.compact().expect("splittable is compact");
        let expanded = compact.expand().expect("in range");
        let mut streamed = Schedule::new(compact.machines());
        compact.expand_into(&mut streamed).expect("in range");
        prop_assert_eq!(&streamed, &expanded);
        for variant in Variant::ALL {
            prop_assert_eq!(
                validate_compact(compact, &inst, variant).is_empty(),
                validate(&expanded, &inst, variant).is_empty(),
                "{}", variant
            );
        }
    }
}
