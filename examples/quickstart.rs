//! Quickstart: build an instance, solve all three variants, inspect the
//! guarantees, and render the preemptive schedule.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use batch_setup_scheduling::prelude::*;
use batch_setup_scheduling::report::{render_gantt, GanttOptions};

fn main() {
    // Four machines; three job classes with setup times 12, 5 and 2.
    let mut builder = InstanceBuilder::new(4);
    let stamping = builder.add_class(12);
    let welding = builder.add_class(5);
    let polish = builder.add_class(2);
    for t in [9, 7, 7, 4, 3] {
        builder.add_job(stamping, t);
    }
    for t in [6, 6, 5, 5, 4, 3] {
        builder.add_job(welding, t);
    }
    for t in [4, 4, 2, 2, 2] {
        builder.add_job(polish, t);
    }
    let instance = builder.build().expect("valid instance");

    println!(
        "instance: n = {}, c = {}, m = {}, N = {}",
        instance.num_jobs(),
        instance.num_classes(),
        instance.machines(),
        instance.total_load_once()
    );
    let bounds = LowerBounds::of(&instance);
    for variant in Variant::ALL {
        println!("  T_min({variant}) = {}", bounds.tmin(variant));
    }
    println!();

    for variant in Variant::ALL {
        let solution = solve(&instance, variant, Algorithm::ThreeHalves);
        let violations = validate(solution.schedule(), &instance, variant);
        assert!(violations.is_empty(), "{violations:?}");
        println!(
            "{variant:<15} makespan = {:<8} accepted T = {:<8} certified ratio <= {:.4}",
            solution.makespan.to_string(),
            solution.accepted.to_string(),
            (solution.makespan / solution.certificate).to_f64(),
        );
    }

    println!("\npreemptive 3/2 schedule:");
    let solution = solve(&instance, Variant::Preemptive, Algorithm::ThreeHalves);
    let opts = GanttOptions {
        reference_t: Some(solution.accepted),
        width: 80,
        ..GanttOptions::default()
    };
    print!("{}", render_gantt(solution.schedule(), &instance, &opts));
}
