//! Non-preemptive scenario: an automotive paint shop.
//!
//! Each color change forces a purge-and-refill of the paint guns — a
//! sequence-independent batch setup. Car bodies (jobs) of the same color form
//! a class; bodies cannot be preempted mid-coat. This is exactly
//! `P|setup=s_i|Cmax`: the shop wants the day's batch finished as early as
//! possible on its `m` paint booths.
//!
//! The example compares the paper's 3/2-approximation (Theorem 8) with the
//! folk baselines (LPT on whole color batches; next-fit) and prints the
//! booth assignment.
//!
//! ```sh
//! cargo run --release --example paint_shop
//! ```

use batch_setup_scheduling::baselines::{lpt_batches, next_fit_batches};
use batch_setup_scheduling::prelude::*;
use batch_setup_scheduling::report::{render_gantt, GanttOptions, Table};

fn main() {
    let booths = 3;
    let mut builder = InstanceBuilder::new(booths);
    // (color, purge minutes, bodies' coat minutes)
    let colors: &[(&str, u64, &[u64])] = &[
        ("arctic white", 25, &[40, 35, 35, 30, 30, 28]),
        ("midnight black", 30, &[45, 40, 38]),
        ("racing red", 45, &[50, 42]),
        ("ocean blue", 20, &[33, 31, 28, 26]),
        ("sunset orange", 55, &[48]),
        ("silver mist", 15, &[30, 27, 25, 22, 20]),
    ];
    let mut names = Vec::new();
    for (name, purge, coats) in colors {
        builder.add_batch(*purge, coats);
        names.push(*name);
    }
    let instance = builder.build().expect("valid instance");

    let ours = solve(&instance, Variant::NonPreemptive, Algorithm::ThreeHalves);
    assert!(validate(ours.schedule(), &instance, Variant::NonPreemptive).is_empty());
    let lpt = lpt_batches(&instance);
    let next_fit = next_fit_batches(&instance);

    let mut table = Table::new(&["scheduler", "day length (min)", "guarantee"]);
    table.row(&[
        "3/2-approx (this paper)".to_string(),
        ours.makespan.to_string(),
        format!(
            "<= 1.5 x OPT (certified <= {:.3})",
            (ours.makespan / ours.certificate).to_f64()
        ),
    ]);
    table.row(&[
        "LPT on color batches".to_string(),
        lpt.makespan().to_string(),
        "heuristic".to_string(),
    ]);
    table.row(&[
        "next-fit".to_string(),
        next_fit.makespan().to_string(),
        "~3-approx".to_string(),
    ]);
    println!(
        "paint shop, {booths} booths, {} bodies, {} colors\n",
        instance.num_jobs(),
        names.len()
    );
    print!("{}", table.to_aligned());

    println!("\nbooth plan (3/2-approximation):");
    let opts = GanttOptions {
        reference_t: Some(ours.accepted),
        width: 84,
        ..GanttOptions::default()
    };
    print!("{}", render_gantt(ours.schedule(), &instance, &opts));
    println!("(░ = purge/refill; letters = colors in declaration order)");

    // A concrete per-booth listing.
    for booth in 0..booths {
        let mut line = format!("booth {booth}:");
        for p in ours.schedule().machine_timeline(booth) {
            match p.kind {
                ItemKind::Setup(c) => line.push_str(&format!("  [purge->{}]", names[c])),
                ItemKind::Piece { job, class } => {
                    let _ = class;
                    line.push_str(&format!(" body#{job}"));
                }
            }
        }
        println!("{line}");
    }
}
