//! Splittable scenario: a render farm.
//!
//! Rendering a shot can be split across any number of nodes and even run in
//! parallel with itself (frames are independent), but a node must first load
//! the shot's scene assets — a batch setup paid per node per shot. This is
//! `P|split,setup=s_i|Cmax`.
//!
//! The example runs the paper's Class-Jumping 3/2-approximation (Theorem 3,
//! `O(n + c log(c+m))`) on a farm with many nodes and shows why the compact
//! configuration output matters: the schedule is described in far fewer
//! records than machines.
//!
//! ```sh
//! cargo run --release --example render_farm
//! ```

use batch_setup_scheduling::prelude::*;

fn main() {
    let nodes = 512;
    let mut builder = InstanceBuilder::new(nodes);
    // (scene-load minutes, per-sequence frame batches in minutes)
    let shots: &[(u64, &[u64])] = &[
        (18, &[400, 380, 350, 900]), // city flyover
        (25, &[1200, 800]),          // ocean storm (heavy sim assets)
        (9, &[150, 140, 130, 120]),  // interior dialogue
        (30, &[2200]),               // battle scene, one huge sequence
        (12, &[300, 280, 260]),      // forest chase
        (6, &[90, 80, 70, 60, 50]),  // title cards
    ];
    for (setup, frames) in shots {
        builder.add_batch(*setup, frames);
    }
    let instance = builder.build().expect("valid instance");

    let solution = solve(&instance, Variant::Splittable, Algorithm::ThreeHalves);
    assert!(validate(solution.schedule(), &instance, Variant::Splittable).is_empty());

    println!(
        "render farm: {} nodes, {} shots, {} sequences, total work {} node-minutes",
        nodes,
        instance.num_classes(),
        instance.num_jobs(),
        instance.total_proc()
    );
    println!(
        "wall-clock finish: {} minutes (accepted guess {}, certified ratio <= {:.4})",
        solution.makespan,
        solution.accepted,
        (solution.makespan / solution.certificate).to_f64()
    );

    let compact = solution.compact().expect("splittable is compact");
    println!(
        "schedule description: {} configuration groups / {} stored records for {} nodes",
        compact.groups().len(),
        compact.stored_items(),
        nodes
    );
    println!("\nfirst configuration groups (node ranges with one shared timeline):");
    for g in compact.groups().iter().take(8) {
        let classes: Vec<String> = g
            .config
            .items
            .iter()
            .map(|it| match it.kind {
                ItemKind::Setup(c) => format!("load(shot {c})"),
                ItemKind::Piece { class, .. } => format!("render(shot {class}, {}m)", it.len),
            })
            .collect();
        println!(
            "  nodes {:>3}..{:<3} x{:<3}: {}",
            g.first_machine,
            g.first_machine + g.count,
            g.count,
            classes.join(" -> ")
        );
    }

    // Contrast with the naive 2-approximation.
    let two = solve(&instance, Variant::Splittable, Algorithm::TwoApprox);
    println!(
        "\n2-approximation finishes at {} ({}% longer)",
        two.makespan,
        ((two.makespan / solution.makespan - 1u64) * 100u64)
            .to_f64()
            .round()
    );
}
