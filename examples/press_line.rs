//! Sequence-dependent scenario: a stamping press line with die changeovers.
//!
//! Swapping the die set of a press costs time that depends on *both* dies —
//! going from a small bracket die to the hood die means a full bolster
//! change, while two hood-family dies swap in minutes. That is the
//! sequence-dependent setup model: `s(c, c')` is a matrix, batch setups are
//! the special case `s(c, c') = s(c')`, and the problem contains path-TSP
//! (so only heuristic duals exist in general).
//!
//! The example drives both regimes through the **unified solve surface**:
//!
//! * the real die matrix (triangle-violating: the "conveyor" family chain is
//!   far cheaper than any direct swap) — heuristic dual, a-posteriori
//!   certificate;
//! * the same line with sequence-independent changeovers — detected as the
//!   uniform special case and routed through the batch-setup reduction with
//!   the proven 3/2 bound of Theorem 8.
//!
//! ```sh
//! cargo run --release --example press_line
//! ```

use batch_setup_scheduling::core::{solve_seqdep, Problem, SeqDepProblem};
use batch_setup_scheduling::prelude::*;
use batch_setup_scheduling::report::{solution_summary, solution_table};
use batch_setup_scheduling::seqdep::{reduce, SeqDepInstance};

fn main() {
    let presses = 3;
    let dies = [
        "hood outer",
        "hood inner",
        "door L",
        "door R",
        "roof",
        "bracket A",
        "bracket B",
        "tailgate",
    ];
    // Minutes of stamping work per die (the batch of panels it produces).
    let work = vec![90, 75, 60, 60, 80, 25, 25, 70];
    // First setup of a fresh press per die.
    let initial = vec![40, 40, 30, 30, 45, 15, 15, 35];
    // Die-to-die changeover minutes. Families chain cheaply (hood outer →
    // hood inner is 8 min; bracket A → bracket B is 4), full bolster
    // changes are expensive — triangle-inequality violations everywhere.
    let switch = vec![
        vec![0, 8, 55, 55, 60, 45, 45, 50],
        vec![12, 0, 55, 55, 60, 45, 45, 50],
        vec![50, 50, 0, 6, 55, 40, 40, 45],
        vec![50, 50, 6, 0, 55, 40, 40, 45],
        vec![60, 60, 55, 55, 0, 50, 50, 40],
        vec![35, 35, 30, 30, 40, 0, 4, 30],
        vec![35, 35, 30, 30, 40, 4, 0, 30],
        vec![45, 45, 40, 40, 35, 30, 30, 0],
    ];
    let line = SeqDepInstance::new(presses, initial.clone(), switch, work.clone())
        .expect("valid die matrix");

    // ---- Regime 1: the real sequence-dependent line. -------------------
    let problem = SeqDepProblem::new(&line);
    assert!(
        problem.uniform_reduction().is_none(),
        "die families make this genuinely sequence-dependent"
    );
    let heuristic = solve_seqdep(&line, Algorithm::Portfolio);
    println!("== sequence-dependent die matrix (heuristic dual) ==");
    print!("{}", solution_summary("seqdep", &heuristic));
    println!(
        "lower bound    T_min = {} (load + cheapest-entry)",
        problem.t_min()
    );

    // The press assignments, re-priced by the exact evaluator.
    println!("\npress assignments:");
    for u in 0..presses {
        let order: Vec<&str> = heuristic
            .schedule()
            .machine_timeline(u)
            .iter()
            .filter_map(|p| match p.kind {
                ItemKind::Piece { class, .. } => Some(dies[class]),
                ItemKind::Setup(_) => None,
            })
            .collect();
        println!("  press {u}: {}", order.join(" -> "));
    }

    // ---- Regime 2: sequence-independent changeovers. -------------------
    // If every die swapped in the same time regardless of predecessor, the
    // instance is the uniform special case: the surface detects it and
    // solves through the batch-setup reduction (Theorem 8, proven 3/2).
    let uniform_switch: Vec<Vec<u64>> = (0..dies.len())
        .map(|i| {
            (0..dies.len())
                .map(|j| if i == j { 0 } else { initial[j] })
                .collect()
        })
        .collect();
    let uniform = SeqDepInstance::new(presses, initial.clone(), uniform_switch, work.clone())
        .expect("valid uniform matrix");
    let uniform_problem = SeqDepProblem::new(&uniform);
    let reduced = uniform_problem
        .uniform_reduction()
        .expect("uniform changeovers reduce to batch setups")
        .clone();
    let proven = solve_seqdep(&uniform, Algorithm::ThreeHalves);
    println!("\n== sequence-independent changeovers (batch-setup reduction) ==");
    print!("{}", solution_summary("seqdep->non-preemptive", &proven));
    assert_eq!(proven.ratio_bound, Rational::new(3, 2));
    // Round trip: orders from the reduced schedule, re-priced exactly.
    let orders = reduce::orders_from_schedule(proven.schedule(), &reduced);
    let confirmed = Rational::from(uniform.makespan(&orders));
    assert!(confirmed <= proven.ratio_bound * proven.accepted);
    println!("evaluator      confirms {confirmed} <= 3/2 x accepted");

    // ---- Side by side. -------------------------------------------------
    println!(
        "\n{}",
        solution_table([
            ("seqdep (die matrix)", &heuristic),
            ("uniform (reduction)", &proven),
        ])
        .to_aligned()
    );
    println!("cheap family chains cut changeover time; the heuristic dual exploits them,");
    println!("while the uniform line pays the full swap between every pair of dies.");
}
