//! Preemptive scenario: a video transcode cluster — and the paper's headline
//! improvement over Monma & Potts (1993).
//!
//! Transcoding a video may be checkpointed and resumed on another worker
//! (preemption) but a single video cannot be transcoded on two workers at
//! once; switching a worker to a different codec family loads a new toolchain
//! (the batch setup). This is `P|pmtn,setup=s_i|Cmax`, the variant where the
//! best prior ratio was `2 − 1/(⌊m/2⌋+1)` — approaching 2 as the cluster
//! grows — and where the paper achieves 3/2 in `O(n log n)`.
//!
//! The example sweeps cluster sizes and compares our 3/2 Class Jumping with
//! the Monma–Potts-style wrap-around baseline, normalizing by the instance
//! lower bound `T_min <= OPT`.
//!
//! ```sh
//! cargo run --release --example transcode_cluster
//! ```

use batch_setup_scheduling::baselines::monma_potts;
use batch_setup_scheduling::prelude::*;
use batch_setup_scheduling::report::Table;

fn main() {
    let mut table = Table::new(&[
        "workers (m)",
        "videos (n)",
        "ours (portfolio): makespan/T_min",
        "Monma-Potts: makespan/T_min",
        "MP / ours",
        "MP worst-case bound",
    ]);
    for m in [2usize, 4, 8, 16, 32] {
        // Codec families with realistic toolchain-load vs transcode times.
        let instance =
            batch_setup_scheduling::gen::generate(&batch_setup_scheduling::gen::GenConfig {
                jobs: 60 * m,
                classes: 8,
                machines: m,
                setup_range: (30, 120), // toolchain load, seconds
                job_range: (20, 600),   // per-video transcode, seconds
                class_sizes: batch_setup_scheduling::gen::ClassSizes::Zipf(1.2),
                seed: 42 + m as u64,
            });
        let lb = LowerBounds::of(&instance).tmin(Variant::Preemptive);

        let ours = solve(&instance, Variant::Preemptive, Algorithm::Portfolio);
        assert!(validate(ours.schedule(), &instance, Variant::Preemptive).is_empty());
        let mp = monma_potts(&instance);
        assert!(validate(&mp, &instance, Variant::Preemptive).is_empty());

        let mp_bound = 2.0 - 1.0 / ((m / 2) as f64 + 1.0);
        table.row(&[
            format!("{m}"),
            format!("{}", instance.num_jobs()),
            format!("{:.4}", (ours.makespan / lb).to_f64()),
            format!("{:.4}", (mp.makespan() / lb).to_f64()),
            format!("{:.3}x", (mp.makespan() / ours.makespan).to_f64()),
            format!("{mp_bound:.3}"),
        ]);
    }
    println!("transcode cluster: preemptive scheduling with codec-toolchain setups\n");
    print!("{}", table.to_aligned());
    println!(
        "\nThe Monma-Potts guarantee degrades toward 2 as m grows; the paper's\n\
         algorithm (Theorem 6) keeps a 3/2 guarantee at every scale. The\n\
         portfolio solver pairs that guarantee with the fast wrap heuristics,\n\
         so it is never worse than Monma-Potts in practice either."
    );
}
