//! `bss` — command-line front end for batch-setup scheduling.
//!
//! ```text
//! bss generate --preset uniform --jobs 1000 --classes 50 --machines 8 --seed 1 > inst.json
//! bss bounds inst.json
//! bss solve inst.json --variant preemptive --algorithm three-halves --render
//! bss solve inst.json --variant splittable --schedule-out sched.json
//! bss validate inst.json sched.json --variant splittable
//! ```

use std::process::ExitCode;

use batch_setup_scheduling::prelude::*;
use batch_setup_scheduling::report::{render_gantt, GanttOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("bounds") => cmd_bounds(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
bss — near-linear approximation algorithms for scheduling with batch setup times

USAGE:
  bss generate --preset <uniform|small-batches|single-job|expensive|zipf>
               [--jobs N] [--classes C] [--machines M] [--seed S]
  bss bounds   <instance.json>
  bss solve    <instance.json> [--variant V] [--algorithm A] [--render]
               [--schedule-out FILE]
  bss validate <instance.json> <schedule.json> [--variant V]

  V: non-preemptive | preemptive | splittable        (default: non-preemptive)
  A: two-approx | eps:<log2> | three-halves | portfolio (default: three-halves)";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_variant(args: &[String]) -> Result<Variant, String> {
    match flag(args, "--variant").as_deref() {
        None | Some("non-preemptive") => Ok(Variant::NonPreemptive),
        Some("preemptive") => Ok(Variant::Preemptive),
        Some("splittable") => Ok(Variant::Splittable),
        Some(v) => Err(format!("unknown variant `{v}`")),
    }
}

fn parse_algorithm(args: &[String]) -> Result<Algorithm, String> {
    match flag(args, "--algorithm").as_deref() {
        None | Some("three-halves") => Ok(Algorithm::ThreeHalves),
        Some("two-approx") => Ok(Algorithm::TwoApprox),
        Some("portfolio") => Ok(Algorithm::Portfolio),
        Some(a) if a.starts_with("eps:") => a[4..]
            .parse()
            .map(|eps_log2| Algorithm::EpsilonSearch { eps_log2 })
            .map_err(|_| format!("bad epsilon exponent in `{a}`")),
        Some(a) => Err(format!("unknown algorithm `{a}`")),
    }
}

fn load_instance(path: &str) -> Result<Instance, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Instance::from_json(&json).map_err(|e| format!("{path}: {e}"))
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let jobs = flag(args, "--jobs").map_or(Ok(1000), |v| v.parse().map_err(|_| "bad --jobs"))?;
    let machines =
        flag(args, "--machines").map_or(Ok(8), |v| v.parse().map_err(|_| "bad --machines"))?;
    let seed = flag(args, "--seed").map_or(Ok(0), |v| v.parse().map_err(|_| "bad --seed"))?;
    let preset = flag(args, "--preset").unwrap_or_else(|| "uniform".into());
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    if machines == 0 {
        return Err("--machines must be at least 1".into());
    }
    // The generators require 1 <= classes <= jobs: an explicit --classes
    // outside that range is an error, the default scales with n.
    let classes = match flag(args, "--classes") {
        Some(v) => {
            let c: usize = v.parse().map_err(|_| "bad --classes")?;
            if c == 0 || c > jobs {
                return Err(format!("--classes must be in [1, --jobs]; got {c}"));
            }
            c
        }
        None => (jobs / 20).max(1),
    };
    let inst = match preset.as_str() {
        "uniform" => batch_setup_scheduling::gen::uniform(jobs, classes, machines, seed),
        "small-batches" => batch_setup_scheduling::gen::small_batches(jobs, machines, seed),
        "single-job" => batch_setup_scheduling::gen::single_job_batches(jobs, machines, seed),
        "expensive" => batch_setup_scheduling::gen::expensive_setups(jobs, machines, seed),
        "zipf" => batch_setup_scheduling::gen::zipf_classes(jobs, classes, machines, seed),
        other => return Err(format!("unknown preset `{other}`")),
    };
    println!("{}", inst.to_json());
    Ok(())
}

fn cmd_bounds(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing instance path")?;
    let inst = load_instance(path)?;
    let lb = LowerBounds::of(&inst);
    println!(
        "n = {}, c = {}, m = {}, N = {}, s_max = {}, Δ = {}",
        inst.num_jobs(),
        inst.num_classes(),
        inst.machines(),
        inst.total_load_once(),
        inst.smax(),
        inst.delta()
    );
    for variant in Variant::ALL {
        let (lo, hi) = lb.opt_window(variant);
        println!("{variant:<15} T_min = {lo}   OPT ∈ [{lo}, {hi}]");
    }
    Ok(())
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing instance path")?;
    let inst = load_instance(path)?;
    let variant = parse_variant(args)?;
    let algo = parse_algorithm(args)?;
    let start = std::time::Instant::now();
    let sol = solve(&inst, variant, algo);
    let elapsed = start.elapsed();
    let violations = validate(sol.schedule(), &inst, variant);
    if !violations.is_empty() {
        return Err(format!("internal error: infeasible output: {violations:?}"));
    }
    println!("variant        {variant}");
    println!(
        "makespan       {}  (~{:.2})",
        sol.makespan,
        sol.makespan.to_f64()
    );
    println!("accepted T     {}", sol.accepted);
    println!("ratio bound    {} x OPT", sol.ratio_bound);
    println!(
        "certified      makespan/OPT <= {:.4}",
        (sol.makespan / sol.certificate).to_f64()
    );
    println!("dual probes    {}", sol.probes);
    println!("solve time     {elapsed:.2?}");
    if has_flag(args, "--render") {
        let opts = GanttOptions {
            reference_t: Some(sol.accepted),
            ..GanttOptions::default()
        };
        print!("{}", render_gantt(sol.schedule(), &inst, &opts));
    }
    if let Some(out) = flag(args, "--schedule-out") {
        let json = sol.schedule().to_json();
        std::fs::write(&out, json).map_err(|e| format!("{out}: {e}"))?;
        println!("schedule       written to {out}");
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let inst_path = args.first().ok_or("missing instance path")?;
    let sched_path = args.get(1).ok_or("missing schedule path")?;
    let inst = load_instance(inst_path)?;
    let json = std::fs::read_to_string(sched_path).map_err(|e| format!("{sched_path}: {e}"))?;
    let schedule = Schedule::from_json(&json).map_err(|e| format!("{sched_path}: {e}"))?;
    let variant = parse_variant(args)?;
    let violations = validate(&schedule, &inst, variant);
    if violations.is_empty() {
        println!(
            "feasible ({variant}); makespan = {}, {} setups",
            schedule.makespan(),
            schedule.num_setups()
        );
        Ok(())
    } else {
        for v in &violations {
            eprintln!("violation: {v}");
        }
        Err(format!("{} violation(s)", violations.len()))
    }
}
