//! `bss` — command-line front end for batch-setup scheduling.
//!
//! ```text
//! bss generate --preset uniform --jobs 1000 --classes 50 --machines 8 --seed 1 > inst.json
//! bss generate --preset seqdep-triangle --classes 40 --machines 6 > sd.json
//! bss bounds inst.json
//! bss solve inst.json --variant preemptive --algorithm three-halves --render
//! bss solve sd.json --variant seqdep --render
//! bss solve inst.json --variant splittable --schedule-out sched.json
//! bss validate inst.json sched.json --variant splittable
//! ```

use std::process::ExitCode;

use batch_setup_scheduling::prelude::*;
use batch_setup_scheduling::report::{render_gantt, solution_summary, GanttOptions};
use batch_setup_scheduling::seqdep::{self as seqdep, SeqDepInstance};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("bounds") => cmd_bounds(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
bss — near-linear approximation algorithms for scheduling with batch setup times

USAGE:
  bss generate --preset <uniform|small-batches|single-job|expensive|zipf
                        |all-expensive|seqdep-uniform|seqdep-tsp|seqdep-triangle>
               [--jobs N] [--classes C] [--machines M] [--seed S]
  bss bounds   <instance.json> [--variant V]
  bss solve    <instance.json> [--variant V] [--algorithm A] [--render]
               [--schedule-out FILE] [--deadline-ms MS] [--budget PROBES]
               [--threads N]
  bss batch    <instance.json>... [--variant V] [--algorithm A] [--threads N]
               [--deadline-ms MS] [--budget PROBES]
  bss validate <instance.json> <schedule.json> [--variant V]
  bss serve    [--addr HOST:PORT] [--threads N] [--cache N] [--queue N]
               [--batch-max N]
  bss loadgen  --addr HOST:PORT [--connections N] [--requests N] [--distinct N]
               [--jobs N] [--classes C] [--machines M] [--seed S]
               [--variant V] [--algorithm A] [--deadline-ms MS] [--rate R]

  V: non-preemptive | preemptive | splittable | seqdep (default: non-preemptive)
  A: two-approx | eps:<log2> | three-halves | portfolio (default: three-halves)

  `--deadline-ms` / `--budget` solve under an anytime budget (wall-clock
  milliseconds / dual-probe count): on expiry the best certified solution so
  far is returned with an honestly widened ratio bound, and the summary gains
  a `completion` line saying which limit tripped.

  `--threads N` (default: the machine's available parallelism) runs `solve`
  with speculative parallel probing — bit-identical answers at every N — and
  sizes `batch`'s per-core workspace pool. N must be at least 1.

  `batch` solves many batch-setup instances on one warm workspace pool,
  one result line per file; a budget covers the whole batch (finished items
  keep their results, the tail is skipped).

  `--variant seqdep` reads a sequence-dependent instance (switch-cost matrix
  wire format); uniform instances route through the batch-setup reduction
  with the proven 3/2 bound, general ones through the heuristic dual.

  `serve` runs the solver as a long-lived TCP daemon (length-prefixed JSON
  frames, see bss-serve): thread-per-core solving with warm workspaces, a
  content-hash solve cache, request micro-batching, and typed shedding once
  the bounded queue fills. `loadgen` drives a running server with a seeded
  request mix — closed-loop by default, open-loop at `--rate R` requests/s
  per connection — and prints sustained solves/s with p50/p90/p99 latency.";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// What `--variant` selects: a batch-setup variant or the
/// sequence-dependent problem.
enum Target {
    Bss(Variant),
    SeqDep,
}

fn parse_target(args: &[String]) -> Result<Target, String> {
    match flag(args, "--variant").as_deref() {
        None | Some("non-preemptive") => Ok(Target::Bss(Variant::NonPreemptive)),
        Some("preemptive") => Ok(Target::Bss(Variant::Preemptive)),
        Some("splittable") => Ok(Target::Bss(Variant::Splittable)),
        Some("seqdep") => Ok(Target::SeqDep),
        Some(v) => Err(format!("unknown variant `{v}`")),
    }
}

fn parse_variant(args: &[String]) -> Result<Variant, String> {
    match parse_target(args)? {
        Target::Bss(v) => Ok(v),
        Target::SeqDep => Err(
            "this command supports the batch-setup variants only; sequence-dependent \
             schedules are confirmed by the evaluator at solve time"
                .into(),
        ),
    }
}

fn parse_algorithm(args: &[String]) -> Result<Algorithm, String> {
    match flag(args, "--algorithm").as_deref() {
        None | Some("three-halves") => Ok(Algorithm::ThreeHalves),
        Some("two-approx") => Ok(Algorithm::TwoApprox),
        Some("portfolio") => Ok(Algorithm::Portfolio),
        Some(a) if a.starts_with("eps:") => a[4..]
            .parse()
            .map(|eps_log2| Algorithm::EpsilonSearch { eps_log2 })
            .map_err(|_| format!("bad epsilon exponent in `{a}`")),
        Some(a) => Err(format!("unknown algorithm `{a}`")),
    }
}

/// Parses the anytime-budget flags. `None` when neither flag is given —
/// callers then take the plain (bit-identical to pre-anytime) solve path.
fn parse_budget(args: &[String]) -> Result<Option<SolveBudget>, String> {
    let deadline_ms: Option<u64> = flag(args, "--deadline-ms")
        .map(|v| {
            v.parse()
                .map_err(|_| format!("bad --deadline-ms `{v}` (expected milliseconds)"))
        })
        .transpose()?;
    let work: Option<u64> = flag(args, "--budget")
        .map(|v| {
            v.parse()
                .map_err(|_| format!("bad --budget `{v}` (expected a probe count)"))
        })
        .transpose()?;
    if deadline_ms.is_none() && work.is_none() {
        return Ok(None);
    }
    let mut budget = SolveBudget::unlimited();
    if let Some(ms) = deadline_ms {
        budget = budget.with_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(w) = work {
        budget = budget.with_work_limit(w);
    }
    Ok(Some(budget))
}

/// Parses `--threads`. Defaults to the machine's available parallelism
/// (1 when the runtime cannot tell); zero is rejected — a solve needs at
/// least the committed search thread.
fn parse_threads(args: &[String]) -> Result<usize, String> {
    match flag(args, "--threads") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(format!("bad --threads `{v}` (expected a count >= 1)")),
        },
        None => Ok(std::thread::available_parallelism().map_or(1, |n| n.get())),
    }
}

fn load_instance(path: &str) -> Result<Instance, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Instance::from_json(&json).map_err(|e| format!("{path}: {e}"))
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let jobs = flag(args, "--jobs").map_or(Ok(1000), |v| v.parse().map_err(|_| "bad --jobs"))?;
    let machines =
        flag(args, "--machines").map_or(Ok(8), |v| v.parse().map_err(|_| "bad --machines"))?;
    let seed = flag(args, "--seed").map_or(Ok(0), |v| v.parse().map_err(|_| "bad --seed"))?;
    let preset = flag(args, "--preset").unwrap_or_else(|| "uniform".into());
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    if machines == 0 {
        return Err("--machines must be at least 1".into());
    }
    // The generators require 1 <= classes <= jobs: an explicit --classes
    // outside that range is an error, the default scales with n.
    let classes = match flag(args, "--classes") {
        Some(v) => {
            let c: usize = v.parse().map_err(|_| "bad --classes")?;
            if c == 0 || c > jobs {
                return Err(format!("--classes must be in [1, --jobs]; got {c}"));
            }
            c
        }
        None => (jobs / 20).max(1),
    };
    // The sequence-dependent presets emit the seqdep wire format (their
    // size is the class count; `--jobs` does not apply).
    match preset.as_str() {
        "seqdep-uniform" => {
            let inst = batch_setup_scheduling::gen::seqdep::uniform_setups(classes, machines, seed);
            println!("{}", inst.to_json());
            return Ok(());
        }
        "seqdep-tsp" => {
            let inst = batch_setup_scheduling::gen::seqdep::tsp_path(classes, seed);
            println!("{}", inst.to_json());
            return Ok(());
        }
        "seqdep-triangle" => {
            let inst =
                batch_setup_scheduling::gen::seqdep::triangle_violating(classes, machines, seed);
            println!("{}", inst.to_json());
            return Ok(());
        }
        _ => {}
    }
    let inst = match preset.as_str() {
        "uniform" => batch_setup_scheduling::gen::uniform(jobs, classes, machines, seed),
        "small-batches" => batch_setup_scheduling::gen::small_batches(jobs, machines, seed),
        "single-job" => batch_setup_scheduling::gen::single_job_batches(jobs, machines, seed),
        "expensive" => batch_setup_scheduling::gen::expensive_setups(jobs, machines, seed),
        "all-expensive" => {
            if classes >= machines {
                return Err(format!(
                    "all-expensive needs --classes < --machines; got {classes} >= {machines}"
                ));
            }
            batch_setup_scheduling::gen::all_expensive(jobs, classes, machines, seed)
        }
        "zipf" => batch_setup_scheduling::gen::zipf_classes(jobs, classes, machines, seed),
        other => return Err(format!("unknown preset `{other}`")),
    };
    println!("{}", inst.to_json());
    Ok(())
}

fn load_seqdep(path: &str) -> Result<SeqDepInstance, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    SeqDepInstance::from_json(&json).map_err(|e| format!("{path}: {e}"))
}

fn cmd_bounds(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing instance path")?;
    if matches!(parse_target(args)?, Target::SeqDep) {
        let inst = load_seqdep(path)?;
        let t_min = seqdep::t_min(&inst);
        let t_safe = batch_setup_scheduling::core::SeqDepProblem::new(&inst)
            .uniform_reduction()
            .map_or_else(
                || "heuristic dual (no proven window)".to_string(),
                |_| "uniform: OPT window [T_min, 2*T_min] via reduction".to_string(),
            );
        println!(
            "c = {}, m = {}, sequential weight = {}",
            inst.num_classes(),
            inst.machines(),
            inst.sequential_weight()
        );
        println!("seqdep         T_min = {t_min}   {t_safe}");
        return Ok(());
    }
    let inst = load_instance(path)?;
    let lb = LowerBounds::of(&inst);
    println!(
        "n = {}, c = {}, m = {}, N = {}, s_max = {}, Δ = {}",
        inst.num_jobs(),
        inst.num_classes(),
        inst.machines(),
        inst.total_load_once(),
        inst.smax(),
        inst.delta()
    );
    for variant in Variant::ALL {
        let (lo, hi) = lb.opt_window(variant);
        println!("{variant:<15} T_min = {lo}   OPT ∈ [{lo}, {hi}]");
    }
    Ok(())
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing instance path")?;
    let algo = parse_algorithm(args)?;
    match parse_target(args)? {
        Target::SeqDep => cmd_solve_seqdep(path, algo, args),
        Target::Bss(variant) => {
            let inst = load_instance(path)?;
            let budget = parse_budget(args)?;
            let threads = parse_threads(args)?;
            let start = std::time::Instant::now();
            let sol = match &budget {
                Some(b) => solve_par_budgeted(&inst, variant, algo, threads, b)
                    .map_err(|e| format!("solve failed: {e}"))?,
                None => solve_par(&inst, variant, algo, threads),
            };
            let elapsed = start.elapsed();
            let violations = validate(sol.schedule(), &inst, variant);
            if !violations.is_empty() {
                return Err(format!("internal error: infeasible output: {violations:?}"));
            }
            print!("{}", solution_summary(&variant.to_string(), &sol));
            println!("threads        {threads}");
            println!("solve time     {elapsed:.2?}");
            if has_flag(args, "--render") {
                let opts = GanttOptions {
                    reference_t: Some(sol.accepted),
                    ..GanttOptions::default()
                };
                print!("{}", render_gantt(sol.schedule(), &inst, &opts));
            }
            write_schedule_out(args, &sol)
        }
    }
}

/// The sequence-dependent path of `bss solve`: same metrics, same renderer;
/// feasibility is confirmed by the seqdep evaluator (the schedule's class
/// orders re-priced with `machine_time` must reproduce the makespan bound).
fn cmd_solve_seqdep(path: &str, algo: Algorithm, args: &[String]) -> Result<(), String> {
    let inst = load_seqdep(path)?;
    let problem = batch_setup_scheduling::core::SeqDepProblem::new(&inst);
    let budget = parse_budget(args)?;
    let threads = parse_threads(args)?;
    let start = std::time::Instant::now();
    let sol = match &budget {
        Some(b) => batch_setup_scheduling::core::solve_seqdep_par_budgeted(&inst, algo, threads, b)
            .map_err(|e| format!("solve failed: {e}"))?,
        None => batch_setup_scheduling::core::solve_seqdep_par(&inst, algo, threads),
    };
    let elapsed = start.elapsed();
    match problem.uniform_reduction() {
        Some(reduced) => {
            // Confirm through the reduction round trip: orders re-priced by
            // the seqdep evaluator stay within the proven bound.
            let orders = seqdep::reduce::orders_from_schedule(sol.schedule(), reduced);
            inst.check_orders(&orders)
                .map_err(|e| format!("internal error: infeasible output: {e}"))?;
            let confirmed = Rational::from(inst.makespan(&orders));
            if confirmed > sol.ratio_bound * sol.accepted {
                return Err("internal error: evaluator exceeds the proven bound".into());
            }
            println!("regime         uniform special case -> batch-setup reduction (proven 3/2)");
        }
        None => {
            // Confirm the general regime too: reconstruct each machine's
            // class order from the schedule (first appearance, setup or
            // piece) and re-price it with the exact evaluator — the
            // reported makespan must reproduce within the solve's bound.
            let mut orders: Vec<Vec<usize>> = vec![Vec::new(); inst.machines()];
            for u in 0..inst.machines() {
                for p in sol.schedule().machine_timeline(u) {
                    let class = match p.kind {
                        ItemKind::Setup(c) => c,
                        ItemKind::Piece { class, .. } => class,
                    };
                    if orders[u].last() != Some(&class) {
                        orders[u].push(class);
                    }
                }
            }
            while matches!(orders.last(), Some(o) if o.is_empty()) {
                orders.pop();
            }
            match inst.check_orders(&orders) {
                Ok(()) => {
                    let confirmed = Rational::from(inst.makespan(&orders));
                    if confirmed != sol.makespan || confirmed > sol.ratio_bound * sol.accepted {
                        return Err(format!(
                            "internal error: evaluator re-prices to {confirmed}, solver \
                             reported {}",
                            sol.makespan
                        ));
                    }
                    println!("regime         general (heuristic dual; evaluator-confirmed)");
                }
                Err(e) if e.contains("unscheduled") => {
                    // Zero-cost classes leave no placements; their position
                    // cannot be reconstructed, so the re-pricing is skipped
                    // (the solver-side invariants still hold).
                    println!(
                        "regime         general (heuristic dual; confirmation skipped: \
                         zero-cost classes)"
                    );
                }
                Err(e) => return Err(format!("internal error: infeasible output: {e}")),
            }
        }
    }
    print!("{}", solution_summary("seqdep", &sol));
    println!("threads        {threads}");
    println!("solve time     {elapsed:.2?}");
    if has_flag(args, "--render") {
        // The seqdep schedule is a standard explicit schedule; render it
        // against the cached reduction's legend when one exists.
        let opts = GanttOptions {
            reference_t: Some(sol.accepted),
            ..GanttOptions::default()
        };
        match problem.uniform_reduction() {
            Some(r) => print!("{}", render_gantt(sol.schedule(), r, &opts)),
            None => println!("(gantt rendering requires the uniform special case)"),
        }
    }
    write_schedule_out(args, &sol)
}

/// `bss batch` — solve many batch-setup instances on one warm
/// [`SolvePool`]. Paths come first, flags after; a budget covers the whole
/// batch (finished items keep their results, the unstarted tail is skipped).
fn cmd_batch(args: &[String]) -> Result<(), String> {
    let split = args
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(args.len());
    let (paths, opts) = args.split_at(split);
    if paths.is_empty() {
        return Err("missing instance paths (list the files before any flags)".into());
    }
    let variant = parse_variant(opts)?;
    let algo = parse_algorithm(opts)?;
    let threads = parse_threads(opts)?;
    let budget = parse_budget(opts)?;
    let instances = paths
        .iter()
        .map(|p| load_instance(p))
        .collect::<Result<Vec<_>, _>>()?;
    let mut pool = SolvePool::with_threads(threads);
    let start = std::time::Instant::now();
    let (results, interrupt) = match &budget {
        Some(b) => {
            let out = pool.solve_batch_budgeted(&instances, variant, algo, b);
            (out.results, out.interrupt)
        }
        None => {
            let full = pool.solve_batch(&instances, variant, algo);
            (full.into_iter().map(Some).collect(), None)
        }
    };
    let elapsed = start.elapsed();
    let mut solved = 0usize;
    for (path, res) in paths.iter().zip(&results) {
        match res {
            Some(Ok(sol)) => {
                solved += 1;
                let completion = match sol.completion {
                    Completion::Full => String::new(),
                    ref other => format!(", completion = {other}"),
                };
                println!(
                    "{path}: makespan = {}, accepted T = {}, ratio <= {}, probes = {}{completion}",
                    sol.makespan, sol.accepted, sol.ratio_bound, sol.probes
                );
            }
            Some(Err(e)) => println!("{path}: error: {e}"),
            None => println!("{path}: skipped (batch budget exhausted before this item)"),
        }
    }
    if let Some(i) = interrupt {
        println!("interrupt      {i}");
    }
    println!(
        "batch          {solved}/{} solved on {threads} thread(s) in {elapsed:.2?}",
        paths.len()
    );
    if solved < paths.len() {
        return Err(format!("{} item(s) did not finish", paths.len() - solved));
    }
    Ok(())
}

/// `bss serve` — run the solve service until killed.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let parse_opt = |name: &str, default: usize| -> Result<usize, String> {
        match flag(args, name) {
            Some(v) => v.parse().map_err(|_| format!("bad {name} `{v}`")),
            None => Ok(default),
        }
    };
    let defaults = batch_setup_scheduling::serve::ServeConfig::default();
    let config = batch_setup_scheduling::serve::ServeConfig {
        addr: flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:7341".into()),
        workers: parse_opt("--threads", 0)?,
        cache_capacity: parse_opt("--cache", defaults.cache_capacity)?,
        queue_capacity: parse_opt("--queue", defaults.queue_capacity)?,
        batch_max: parse_opt("--batch-max", defaults.batch_max)?,
        ..defaults
    };
    let server =
        batch_setup_scheduling::serve::spawn(config).map_err(|e| format!("bind failed: {e}"))?;
    println!("bss-serve listening on {}", server.addr());
    println!("stop with a {{\"v\":1,\"id\":0,\"kind\":\"shutdown\"}} request or SIGKILL");
    server.join();
    Ok(())
}

/// `bss loadgen` — drive a running server and report throughput/latency.
fn cmd_loadgen(args: &[String]) -> Result<(), String> {
    use batch_setup_scheduling::serve::{LoadMode, LoadgenConfig};
    let addr = flag(args, "--addr").ok_or("missing --addr (the server to drive)")?;
    let parse_opt = |name: &str, default: usize| -> Result<usize, String> {
        match flag(args, name) {
            Some(v) => v.parse().map_err(|_| format!("bad {name} `{v}`")),
            None => Ok(default),
        }
    };
    let defaults = LoadgenConfig::default();
    let mode = match flag(args, "--rate") {
        None => LoadMode::Closed,
        Some(v) => LoadMode::Open {
            rate_per_conn: v.parse().map_err(|_| format!("bad --rate `{v}`"))?,
        },
    };
    let deadline_ms = flag(args, "--deadline-ms")
        .map(|v| v.parse().map_err(|_| format!("bad --deadline-ms `{v}`")))
        .transpose()?;
    let seed = flag(args, "--seed")
        .map(|v| v.parse().map_err(|_| format!("bad --seed `{v}`")))
        .transpose()?
        .unwrap_or(defaults.seed);
    let config = LoadgenConfig {
        addr,
        connections: parse_opt("--connections", defaults.connections)?,
        requests: parse_opt("--requests", defaults.requests)?,
        distinct: parse_opt("--distinct", defaults.distinct)?,
        jobs: parse_opt("--jobs", defaults.jobs)?,
        classes: parse_opt("--classes", defaults.classes)?,
        machines: parse_opt("--machines", defaults.machines)?,
        seed,
        variant: parse_variant(args)?,
        algo: parse_algorithm(args)?,
        deadline_ms,
        mode,
    };
    let report = batch_setup_scheduling::serve::loadgen::run(&config)
        .map_err(|e| format!("load generation failed: {e}"))?;
    println!("{}", report.render());
    Ok(())
}

fn write_schedule_out(args: &[String], sol: &Solution) -> Result<(), String> {
    if let Some(out) = flag(args, "--schedule-out") {
        let json = sol.schedule().to_json();
        std::fs::write(&out, json).map_err(|e| format!("{out}: {e}"))?;
        println!("schedule       written to {out}");
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let inst_path = args.first().ok_or("missing instance path")?;
    let sched_path = args.get(1).ok_or("missing schedule path")?;
    let inst = load_instance(inst_path)?;
    let json = std::fs::read_to_string(sched_path).map_err(|e| format!("{sched_path}: {e}"))?;
    let schedule = Schedule::from_json(&json).map_err(|e| format!("{sched_path}: {e}"))?;
    let variant = parse_variant(args)?;
    let violations = validate(&schedule, &inst, variant);
    if violations.is_empty() {
        println!(
            "feasible ({variant}); makespan = {}, {} setups",
            schedule.makespan(),
            schedule.num_setups()
        );
        Ok(())
    } else {
        for v in &violations {
            eprintln!("violation: {v}");
        }
        Err(format!("{} violation(s)", violations.len()))
    }
}
