//! # batch-setup-scheduling
//!
//! A production-quality Rust implementation of
//! *Near-Linear Approximation Algorithms for Scheduling Problems with Batch
//! Setup Times* (Max A. Deppert & Klaus Jansen, SPAA 2019).
//!
//! `n` jobs, partitioned into `c` classes, are scheduled on `m` identical
//! machines; a machine pays a setup time `s_i` whenever it starts or switches
//! to class `i`. The goal is to minimize the makespan. Three variants are
//! supported — non-preemptive, preemptive, and splittable — each with:
//!
//! * a 2-approximation in `O(n)` (Theorem 1),
//! * a `(3/2 + ε)`-approximation in `O(n log 1/ε)` (Theorem 2),
//! * a `3/2`-approximation: `O(n + c log(c+m))` splittable (Theorem 3),
//!   `O(n log(c+m))` preemptive (Theorem 6), `O(n log(n+Δ))` non-preemptive
//!   (Theorem 8).
//!
//! ## Quickstart
//!
//! ```
//! use batch_setup_scheduling::prelude::*;
//!
//! // Three machines; two classes of jobs with setup times 10 and 4.
//! let mut builder = InstanceBuilder::new(3);
//! let red = builder.add_class(10);
//! let blue = builder.add_class(4);
//! for t in [7, 3, 9, 2] {
//!     builder.add_job(red, t);
//! }
//! for t in [5, 5, 6] {
//!     builder.add_job(blue, t);
//! }
//! let instance = builder.build().unwrap();
//!
//! // Solve the preemptive variant with the 3/2-approximation.
//! let solution = solve(&instance, Variant::Preemptive, Algorithm::ThreeHalves);
//! assert!(validate(solution.schedule(), &instance, Variant::Preemptive).is_empty());
//!
//! // The guarantee: makespan <= 3/2 * accepted makespan guess <= 3/2 * OPT.
//! assert!(solution.makespan <= solution.accepted * Rational::new(3, 2));
//! ```
//!
//! The facade re-exports the workspace crates; see each crate for details:
//! [`bss_core`] (algorithms), [`bss_instance`] (model), [`bss_schedule`]
//! (schedules + validators), [`bss_wrap`] (Batch Wrapping), [`bss_knapsack`]
//! (continuous knapsack), [`bss_baselines`] (comparators and exact oracles),
//! [`bss_gen`] (workload generators), [`bss_report`] (rendering/stats).

pub use bss_baselines as baselines;
pub use bss_core as core;
pub use bss_exact as exact;
pub use bss_gen as gen;
pub use bss_instance as instance;
pub use bss_knapsack as knapsack;
pub use bss_par as par;
pub use bss_rational as rational;
pub use bss_report as report;
pub use bss_schedule as schedule;
pub use bss_seqdep as seqdep;
pub use bss_serve as serve;
pub use bss_wrap as wrap;

/// Most-used items in one import.
pub mod prelude {
    pub use bss_core::{
        solve, solve_budgeted, solve_par, solve_par_budgeted, solve_problem, solve_seqdep,
        solve_seqdep_budgeted, solve_seqdep_par, solve_seqdep_par_budgeted, solve_seqdep_with,
        solve_with, Algorithm, BssProblem, CancelToken, Completion, DualWorkspace, Interrupt,
        Problem, ScheduleRepr, SeqDepProblem, Solution, SolveBudget, SolveError,
    };
    pub use bss_instance::{ClassId, Instance, InstanceBuilder, Job, JobId, LowerBounds, Variant};
    pub use bss_par::{BatchOutcome, SolvePool};
    pub use bss_rational::Rational;
    pub use bss_schedule::{
        validate, validate_compact, CompactSchedule, ItemKind, Placement, PlacementSink, Schedule,
        ScheduleStats, Violation,
    };
    pub use bss_seqdep::SeqDepInstance;
    pub use bss_serve::{Client, ServeConfig, SolveOptions, SolveOutcome};
}
